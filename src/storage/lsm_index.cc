#include "storage/lsm_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace asterix {
namespace storage {

using common::Status;

const adm::Value* SortedRun::Get(const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

LsmIndex::LsmIndex(LsmOptions options) : options_(options) {
  memtable_pool_ = options_.memtable_pool != nullptr
                       ? options_.memtable_pool
                       : common::MemGovernor::Default().GetPool(
                             common::MemGovernor::kMemtablePool);
  merge_pool_ = options_.merge_pool != nullptr
                    ? options_.merge_pool
                    : common::MemGovernor::Default().GetPool(
                          common::MemGovernor::kMergePool);
  common::MetricsRegistry& reg = common::MetricsRegistry::Default();
  metric_flushes_ = reg.GetCounter("lsm_flushes_total");
  metric_merges_ = reg.GetCounter("lsm_merges_total");
  metric_flush_duration_us_ = reg.GetHistogram("lsm_flush_duration_us");
  metric_merge_duration_us_ = reg.GetHistogram("lsm_merge_duration_us");
  metric_flush_backlog_ = reg.GetGauge("lsm_flush_backlog");
  if (options_.async_maintenance) {
    maintenance_running_ = true;
    maintenance_ = std::thread([this] { MaintenanceMain(); });
  }
}

LsmIndex::~LsmIndex() {
  Close();
  // Data still resident in (sealed) memtables keeps its governor charge
  // until the index itself goes away.
  common::MutexLock lock(mutex_);
  if (memtable_pool_ != nullptr) {
    size_t held = memtable_bytes_;
    for (size_t bytes : immutable_bytes_) held += bytes;
    if (held > 0) memtable_pool_->Release(held);
  }
  memtable_bytes_ = 0;
  immutable_bytes_.clear();
}

std::shared_ptr<SortedRun> LsmIndex::BuildRun(const Memtable& memtable) {
  std::vector<SortedRun::Entry> entries;
  entries.reserve(memtable.size());
  for (const auto& [k, v] : memtable) entries.emplace_back(k, v);
  return std::make_shared<SortedRun>(std::move(entries));
}

std::shared_ptr<SortedRun> LsmIndex::MergeRuns(
    const std::vector<std::shared_ptr<SortedRun>>& runs,
    bool drop_tombstones) {
  // Oldest-to-newest apply: the newest value for a key wins.
  std::map<std::string, adm::Value> merged;
  for (const auto& run : runs) {
    for (const auto& [k, v] : run->entries()) merged[k] = v;
  }
  std::vector<SortedRun::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (drop_tombstones && IsTombstone(v)) continue;
    entries.emplace_back(k, std::move(v));
  }
  return std::make_shared<SortedRun>(std::move(entries));
}

void LsmIndex::SealLocked() {
  if (memtable_.empty()) return;
  immutables_.push_back(
      std::make_shared<const Memtable>(std::move(memtable_)));
  // The sealed memtable keeps its governor charge; remember how much so
  // the flush that retires it can release exactly that.
  immutable_bytes_.push_back(memtable_bytes_);
  memtable_ = Memtable();
  memtable_bytes_ = 0;
  ++stats_.flushes;
  metric_flush_backlog_->Add(1);
  maintenance_cv_.NotifyOne();
}

void LsmIndex::FlushNowLocked() {
  if (memtable_.empty()) return;
  common::Stopwatch timer;
  runs_.push_back(BuildRun(memtable_));
  metric_flush_duration_us_->Record(timer.ElapsedMicros());
  metric_flushes_->Add(1);
  memtable_.clear();
  // The bytes moved out of the governed write path into a run.
  if (memtable_pool_ != nullptr && memtable_bytes_ > 0) {
    memtable_pool_->Release(memtable_bytes_);
  }
  memtable_bytes_ = 0;
  ++stats_.flushes;
}

void LsmIndex::MergeNowLocked() {
  if (runs_.size() < 2) return;
  // Full merge: the result is the only (hence oldest) run, so tombstones
  // have shadowed everything they ever will.
  size_t input_bytes = 0;
  for (const auto& run : runs_) input_bytes += run->approx_bytes();
  if (merge_pool_ != nullptr && !merge_pool_->TryReserve(input_bytes).ok()) {
    // Merges must proceed (a stalled merge only grows the next one):
    // overdraw the pool instead of erroring; the overdraft is counted.
    merge_pool_->ForceReserve(input_bytes);
  }
  common::Stopwatch timer;
  runs_ = {MergeRuns(runs_, /*drop_tombstones=*/true)};
  metric_merge_duration_us_->Record(timer.ElapsedMicros());
  metric_merges_->Add(1);
  ++stats_.merges;
  if (merge_pool_ != nullptr) merge_pool_->Release(input_bytes);
}

Status LsmIndex::Insert(const std::string& key, adm::Value value) {
  ASTERIX_FAILPOINT("storage.lsm.insert");
  size_t bytes = key.size() + value.ApproxSizeBytes();
  // Governor admission before any mutation: an exhausted "memtable" pool
  // surfaces as a typed error the at-least-once protocol simply retries
  // (the charge mirrors memtable_bytes_ and is released at flush time).
  if (memtable_pool_ != nullptr) {
    Status reserved = memtable_pool_->TryReserve(bytes);
    if (!reserved.ok()) return reserved;
  }
  common::MutexLock lock(mutex_);
  if (options_.async_maintenance && options_.max_immutable_memtables > 0 &&
      immutables_.size() >= options_.max_immutable_memtables && !stop_) {
    common::Stopwatch stall;
    drained_cv_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return stop_ ||
             immutables_.size() < options_.max_immutable_memtables;
    });
    stats_.insert_stall_ms += stall.ElapsedMillis();
  }
  memtable_[key] = std::move(value);
  memtable_bytes_ += bytes;
  ++stats_.inserts;
  if (memtable_bytes_ >= options_.memtable_bytes_limit) {
    if (options_.async_maintenance && maintenance_running_) {
      SealLocked();
    } else {
      common::Stopwatch stall;
      FlushNowLocked();
      if (MergePendingLocked()) MergeNowLocked();
      stats_.insert_stall_ms += stall.ElapsedMillis();
    }
  }
  return Status::OK();
}

Status LsmIndex::Delete(const std::string& key) {
  // A tombstone is just an upsert of the reserved marker: it rides the
  // same memtable/flush/merge machinery and shadows older components.
  return Insert(key, adm::Value::Null());
}

std::optional<adm::Value> LsmIndex::Get(const std::string& key) const {
  // Snapshot the immutable components under the lock, search lock-free.
  // The newest component holding the key decides; a tombstone there means
  // the key is deleted no matter what older components say.
  std::deque<std::shared_ptr<const Memtable>> immutables;
  std::vector<std::shared_ptr<SortedRun>> runs;
  {
    common::MutexLock lock(mutex_);
    auto it = memtable_.find(key);
    if (it != memtable_.end()) {
      if (IsTombstone(it->second)) return std::nullopt;
      return it->second;
    }
    immutables = immutables_;
    runs = runs_;
  }
  for (auto rit = immutables.rbegin(); rit != immutables.rend(); ++rit) {
    auto it = (*rit)->find(key);
    if (it != (*rit)->end()) {
      if (IsTombstone(it->second)) return std::nullopt;
      return it->second;
    }
  }
  for (auto rit = runs.rbegin(); rit != runs.rend(); ++rit) {
    const adm::Value* v = (*rit)->Get(key);
    if (v != nullptr) {
      if (IsTombstone(*v)) return std::nullopt;
      return *v;
    }
  }
  return std::nullopt;
}

void LsmIndex::Scan(const std::function<void(const std::string&,
                                             const adm::Value&)>& visitor)
    const {
  // Snapshot components under the lock, then merge outside it.
  Memtable memtable_copy;
  std::deque<std::shared_ptr<const Memtable>> immutables;
  std::vector<std::shared_ptr<SortedRun>> runs;
  {
    common::MutexLock lock(mutex_);
    memtable_copy = memtable_;
    immutables = immutables_;
    runs = runs_;
  }
  // Oldest-to-newest apply into one map: newest value wins naturally.
  std::map<std::string, adm::Value> merged;
  for (const auto& run : runs) {
    for (const auto& [k, v] : run->entries()) merged[k] = v;
  }
  for (const auto& imm : immutables) {
    for (const auto& [k, v] : *imm) merged[k] = v;
  }
  for (const auto& [k, v] : memtable_copy) merged[k] = v;
  for (const auto& [k, v] : merged) {
    if (IsTombstone(v)) continue;  // deleted key
    visitor(k, v);
  }
}

int64_t LsmIndex::Size() const {
  std::vector<std::pair<std::string, bool>> memtable_keys;
  std::deque<std::shared_ptr<const Memtable>> immutables;
  std::vector<std::shared_ptr<SortedRun>> runs;
  {
    common::MutexLock lock(mutex_);
    memtable_keys.reserve(memtable_.size());
    for (const auto& [k, v] : memtable_) {
      memtable_keys.emplace_back(k, IsTombstone(v));
    }
    immutables = immutables_;
    runs = runs_;
  }
  // Oldest-to-newest: the newest occurrence decides whether the key is
  // live or deleted.
  std::unordered_map<std::string_view, bool> live;
  for (const auto& run : runs) {
    for (const auto& [k, v] : run->entries()) live[k] = !IsTombstone(v);
  }
  for (const auto& imm : immutables) {
    for (const auto& [k, v] : *imm) live[k] = !IsTombstone(v);
  }
  for (const auto& [k, dead] : memtable_keys) live[k] = !dead;
  int64_t count = 0;
  for (const auto& [k, is_live] : live) count += is_live ? 1 : 0;
  return count;
}

void LsmIndex::Flush() {
  {
    common::MutexLock lock(mutex_);
    if (options_.async_maintenance && maintenance_running_) {
      SealLocked();
    } else {
      FlushNowLocked();
      return;
    }
  }
  Drain();
}

void LsmIndex::Drain() {
  common::MutexLock lock(mutex_);
  drained_cv_.Wait(mutex_, [this]() REQUIRES(mutex_) {
    return !maintenance_running_ ||
           (immutables_.empty() && !MergePendingLocked());
  });
}

void LsmIndex::Close() {
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
    maintenance_cv_.NotifyAll();
    drained_cv_.NotifyAll();
  }
  if (maintenance_.joinable()) maintenance_.join();
}

void LsmIndex::MaintenanceMain() {
  mutex_.Lock();
  while (true) {
    maintenance_cv_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return stop_ || !immutables_.empty() || MergePendingLocked();
    });
    if (MergePendingLocked()) {
      // Merge before flushing the next memtable so run counts honor
      // max_runs even under a flush backlog — otherwise hundreds of runs
      // pile up and collapse in one degenerate end-of-stream merge. Only
      // this thread mutates runs_ in async mode, so the snapshot prefix
      // is stable while the merge runs off-lock.
      std::vector<std::shared_ptr<SortedRun>> to_merge = runs_;
      mutex_.Unlock();
      // Delay action = a long-running merge holding the backlog up.
      ASTERIX_FAILPOINT_HIT("storage.lsm.merge");
      // Merge working memory: charge the inputs' bytes for the merge's
      // duration; must-proceed, so exhaustion is a counted overdraft.
      size_t merge_input_bytes = 0;
      for (const auto& run : to_merge) {
        merge_input_bytes += run->approx_bytes();
      }
      if (merge_pool_ != nullptr &&
          !merge_pool_->TryReserve(merge_input_bytes).ok()) {
        merge_pool_->ForceReserve(merge_input_bytes);
      }
      // to_merge covers every run at snapshot time and the result is
      // re-inserted as the oldest, so tombstones can be retired here.
      common::Stopwatch merge_timer;
      std::shared_ptr<SortedRun> merged =
          MergeRuns(to_merge, /*drop_tombstones=*/true);
      metric_merge_duration_us_->Record(merge_timer.ElapsedMicros());
      metric_merges_->Add(1);
      if (merge_pool_ != nullptr) merge_pool_->Release(merge_input_bytes);
      mutex_.Lock();
      runs_.erase(runs_.begin(),
                  runs_.begin() + static_cast<ptrdiff_t>(to_merge.size()));
      runs_.insert(runs_.begin(), std::move(merged));
      ++stats_.merges;
      drained_cv_.NotifyAll();
      continue;
    }
    if (!immutables_.empty()) {
      // Flush the oldest sealed memtable. The memtable stays visible to
      // readers (newer than every run) while the run is built off-lock;
      // the swap is a single atomic step under the lock.
      std::shared_ptr<const Memtable> imm = immutables_.front();
      mutex_.Unlock();
      // Delay action = a slow flush (grows the sealed-memtable backlog,
      // the window where a crash strands unflushed data behind the WAL).
      ASTERIX_FAILPOINT_HIT("storage.lsm.flush");
      common::Stopwatch flush_timer;
      std::shared_ptr<SortedRun> run = BuildRun(*imm);
      metric_flush_duration_us_->Record(flush_timer.ElapsedMicros());
      metric_flushes_->Add(1);
      mutex_.Lock();
      runs_.push_back(std::move(run));
      immutables_.pop_front();
      if (memtable_pool_ != nullptr && immutable_bytes_.front() > 0) {
        memtable_pool_->Release(immutable_bytes_.front());
      }
      immutable_bytes_.pop_front();
      metric_flush_backlog_->Add(-1);
      drained_cv_.NotifyAll();
      continue;
    }
    if (stop_) break;
  }
  maintenance_running_ = false;
  drained_cv_.NotifyAll();
  mutex_.Unlock();
}

LsmStats LsmIndex::stats() const {
  LsmStats stats;
  {
    common::MutexLock lock(mutex_);
    stats = stats_;
    stats.flush_backlog = static_cast<int64_t>(immutables_.size());
    stats.merge_backlog = MergePendingLocked() ? 1 : 0;
  }
  stats.live_keys = Size();
  return stats;
}

size_t LsmIndex::run_count() const {
  common::MutexLock lock(mutex_);
  return runs_.size();
}

size_t LsmIndex::flush_backlog() const {
  common::MutexLock lock(mutex_);
  return immutables_.size();
}

size_t LsmIndex::merge_backlog() const {
  common::MutexLock lock(mutex_);
  return MergePendingLocked() ? 1 : 0;
}

PartitionedLsmIndex::PartitionedLsmIndex(LsmOptions options) {
  size_t n = options.partitions;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  partitions_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    partitions_.push_back(std::make_unique<LsmIndex>(options));
  }
}

size_t PartitionedLsmIndex::PartitionOf(const std::string& key) const {
  if (partitions_.size() <= 1) return 0;
  return static_cast<size_t>(common::Fnv1a(key) % partitions_.size());
}

Status PartitionedLsmIndex::Insert(const std::string& key,
                                   adm::Value value) {
  return partitions_[PartitionOf(key)]->Insert(key, std::move(value));
}

Status PartitionedLsmIndex::Delete(const std::string& key) {
  return partitions_[PartitionOf(key)]->Delete(key);
}

std::optional<adm::Value> PartitionedLsmIndex::Get(
    const std::string& key) const {
  return partitions_[PartitionOf(key)]->Get(key);
}

void PartitionedLsmIndex::Scan(
    const std::function<void(const std::string&, const adm::Value&)>&
        visitor) const {
  if (partitions_.size() == 1) {
    partitions_[0]->Scan(visitor);
    return;
  }
  // Collect each partition's (sorted) contents, then k-way merge. Keys are
  // disjoint across partitions, so no newest-wins arbitration is needed.
  std::vector<std::vector<SortedRun::Entry>> streams(partitions_.size());
  for (size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->Scan([&](const std::string& k, const adm::Value& v) {
      streams[i].emplace_back(k, v);
    });
  }
  std::vector<size_t> heads(streams.size(), 0);
  while (true) {
    int best = -1;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (heads[i] >= streams[i].size()) continue;
      if (best < 0 || streams[i][heads[i]].first <
                          streams[static_cast<size_t>(best)]
                                 [heads[static_cast<size_t>(best)]]
                                     .first) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    auto& entry = streams[static_cast<size_t>(best)]
                         [heads[static_cast<size_t>(best)]++];
    visitor(entry.first, entry.second);
  }
}

int64_t PartitionedLsmIndex::Size() const {
  int64_t total = 0;
  for (const auto& p : partitions_) total += p->Size();
  return total;
}

void PartitionedLsmIndex::Flush() {
  for (auto& p : partitions_) p->Flush();
}

void PartitionedLsmIndex::Drain() {
  for (auto& p : partitions_) p->Drain();
}

void PartitionedLsmIndex::Close() {
  for (auto& p : partitions_) p->Close();
}

LsmStats PartitionedLsmIndex::stats() const {
  LsmStats total;
  for (const auto& p : partitions_) {
    LsmStats s = p->stats();
    total.inserts += s.inserts;
    total.flushes += s.flushes;
    total.merges += s.merges;
    total.live_keys += s.live_keys;
    total.insert_stall_ms += s.insert_stall_ms;
    total.flush_backlog += s.flush_backlog;
    total.merge_backlog += s.merge_backlog;
  }
  return total;
}

size_t PartitionedLsmIndex::run_count() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->run_count();
  return total;
}

size_t PartitionedLsmIndex::flush_backlog() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->flush_backlog();
  return total;
}

size_t PartitionedLsmIndex::merge_backlog() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->merge_backlog();
  return total;
}

}  // namespace storage
}  // namespace asterix
