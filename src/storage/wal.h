// Write-ahead log. Every record insert appends a log entry before the
// in-memory indexes are updated; the paper's at-least-once protocol treats
// "log record written to the local disk" as the persistence point that
// triggers an ack.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/mem_governor.h"
#include "common/observability.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace storage {

class Wal {
 public:
  /// Opens (creating or appending to) the log at `path`. When `durable` is
  /// true every append is flushed to the OS; this is the knob the
  /// Storm+MongoDB baseline comparison varies as "write concern".
  /// `wal_pool` is the governor pool bounding in-flight append bytes
  /// (each Append leases its framed size for the append's duration); null
  /// resolves to MemGovernor::Default()'s "wal" pool. An exhausted pool
  /// fails Append with ResourceExhausted before any byte lands, so the
  /// at-least-once protocol retries it like any other soft append fault.
  Wal(std::string path, bool durable = false,
      common::MemPool* wal_pool = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  [[nodiscard]] common::Status Open();

  /// Appends one entry (opaque payload). Thread-safe.
  [[nodiscard]] common::Status Append(const std::string& payload);

  /// Flushes buffered entries to the OS.
  [[nodiscard]] common::Status Sync();

  /// Replays all entries in append order. Used by node-rejoin recovery.
  [[nodiscard]] common::Status Replay(
      const std::function<void(const std::string&)>& consumer) const;

  int64_t entry_count() const;
  int64_t bytes_written() const;
  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  const bool durable_;
  // Resolved governor pool (ctor arg or the Default() governor's "wal"
  // pool). Leased lock-free per append; never null after construction.
  common::MemPool* const wal_pool_;
  mutable common::Mutex mutex_{common::LockRank::kWal};
  std::FILE* file_ GUARDED_BY(mutex_) = nullptr;
  int64_t entry_count_ GUARDED_BY(mutex_) = 0;
  int64_t bytes_written_ GUARDED_BY(mutex_) = 0;

  // Cached process-wide registry metrics (relaxed atomics, safe under
  // mutex_): append/byte throughput and the latency of flushing buffered
  // entries to the OS (the paper's persistence point for acks).
  common::Counter* metric_appends_ = nullptr;
  common::Counter* metric_bytes_ = nullptr;
  common::Counter* metric_syncs_ = nullptr;
  common::Histogram* metric_sync_latency_us_ = nullptr;
};

}  // namespace storage
}  // namespace asterix

