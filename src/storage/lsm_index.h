// LSM-style primary index: an in-memory memtable absorbing writes, sealed
// into immutable memtables when full, flushed into immutable sorted runs
// and merged by a background maintenance thread. AsterixDB stores datasets
// as *partitioned* LSM-based B+-trees whose flush/merge work never stalls
// the ingestion pipeline; this component reproduces that write path's cost
// structure (cheap inserts, asynchronous flush/merge work) and
// PartitionedLsmIndex reproduces the partitioned parallelism.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "common/mem_governor.h"
#include "common/observability.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace storage {

/// Immutable sorted component produced by a memtable flush or a merge.
class SortedRun {
 public:
  using Entry = std::pair<std::string, adm::Value>;

  explicit SortedRun(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    for (const auto& [k, v] : entries_) {
      approx_bytes_ += k.size() + v.ApproxSizeBytes();
    }
  }

  const adm::Value* Get(const std::string& key) const;
  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  /// Approximate payload bytes, computed once at construction. Merge
  /// admission charges the governor's "merge" pool with the input runs'
  /// totals while a merge is in flight.
  size_t approx_bytes() const { return approx_bytes_; }

 private:
  std::vector<Entry> entries_;  // sorted by key, unique keys
  size_t approx_bytes_ = 0;
};

struct LsmOptions {
  /// Memtable seal threshold (approximate payload bytes).
  size_t memtable_bytes_limit = 4 << 20;
  /// Merge all runs into one when the run count reaches this.
  size_t max_runs = 8;
  /// Run flush/merge on a per-index background thread; Insert only seals
  /// the full memtable and enqueues it (never blocks on a merge). When
  /// false, flush and merge run synchronously on the insert path (the
  /// pre-optimization behavior, kept for ablation benches).
  bool async_maintenance = true;
  /// Backpressure: Insert waits while this many sealed memtables await
  /// flushing. 0 = unbounded, Insert never stalls (waits are recorded in
  /// stats().insert_stall_ms either way).
  size_t max_immutable_memtables = 0;
  /// PartitionedLsmIndex: number of hash partitions. 0 = hardware
  /// concurrency.
  size_t partitions = 0;
  /// Governor pool charged for resident write memory (active + sealed
  /// memtables). Null resolves to MemGovernor::Default()'s "memtable"
  /// pool; an exhausted pool fails Insert with ResourceExhausted (the
  /// at-least-once protocol retries it).
  common::MemPool* memtable_pool = nullptr;
  /// Governor pool charged for merge working memory (the input runs'
  /// bytes while a merge is in flight). Null resolves to the default
  /// "merge" pool; merges must proceed, so exhaustion is taken as a
  /// counted overdraft rather than an error.
  common::MemPool* merge_pool = nullptr;
};

struct LsmStats {
  int64_t inserts = 0;
  /// Memtables sealed for flushing (counted at seal time, so the figure is
  /// deterministic whether maintenance has caught up or not).
  int64_t flushes = 0;
  int64_t merges = 0;
  int64_t live_keys = 0;
  /// Total milliseconds Insert spent blocked on storage maintenance
  /// (inline flush/merge in sync mode, backpressure waits in async mode).
  int64_t insert_stall_ms = 0;
  /// Gauges sampled when stats() is called.
  int64_t flush_backlog = 0;  // sealed memtables awaiting background flush
  int64_t merge_backlog = 0;  // 1 when a merge is pending/overdue
};

/// Thread-safe LSM index mapping encoded keys to ADM values (upsert
/// semantics: the newest write for a key wins). Readers take a consistent
/// snapshot of the components under the lock and then search lock-free.
class LsmIndex {
 public:
  explicit LsmIndex(LsmOptions options = {});
  ~LsmIndex();

  LsmIndex(const LsmIndex&) = delete;
  LsmIndex& operator=(const LsmIndex&) = delete;

  [[nodiscard]] common::Status Insert(const std::string& key, adm::Value value);

  /// Deletes `key` by writing a tombstone (a null value) that shadows any
  /// older component. Tombstones are dropped when a merge produces the
  /// oldest run; until then Get/Scan/Size treat the key as absent.
  [[nodiscard]] common::Status Delete(const std::string& key);

  /// True if `value` is the tombstone marker. Datasets store only records,
  /// so null is free to reserve as the deletion sentinel.
  static bool IsTombstone(const adm::Value& value) {
    return value.is_null();
  }

  /// Point lookup across memtable + sealed memtables + runs (newest
  /// component wins).
  std::optional<adm::Value> Get(const std::string& key) const;

  /// Visits every live (key, value) pair in key order.
  void Scan(const std::function<void(const std::string&,
                                     const adm::Value&)>& visitor) const;

  /// Number of live (distinct) keys. Computed on demand from a component
  /// snapshot (the insert path no longer probes runs for key existence).
  int64_t Size() const;

  /// Seals the current memtable and waits until it reaches a run (used by
  /// tests and shutdown paths).
  void Flush();

  /// Blocks until the background maintenance backlog is empty (all sealed
  /// memtables flushed, no merge pending). No-op in sync mode.
  void Drain();

  /// Drains pending maintenance work and stops the background thread.
  /// Idempotent; called by the destructor.
  void Close();

  LsmStats stats() const;
  size_t run_count() const;
  /// Cheap gauges for metrics sampling on hot paths.
  size_t flush_backlog() const;
  size_t merge_backlog() const;

 private:
  using Memtable = std::map<std::string, adm::Value>;

  /// Moves the active memtable onto the sealed queue. Caller holds mutex_.
  void SealLocked() REQUIRES(mutex_);
  /// Sync mode: memtable -> run and merge inline. Caller holds mutex_.
  void FlushNowLocked() REQUIRES(mutex_);
  void MergeNowLocked() REQUIRES(mutex_);
  bool MergePendingLocked() const REQUIRES(mutex_) {
    return runs_.size() >= options_.max_runs && runs_.size() >= 2;
  }
  void MaintenanceMain();

  static std::shared_ptr<SortedRun> BuildRun(const Memtable& memtable);
  /// `drop_tombstones` is safe only when the merged result becomes the
  /// oldest run (nothing below it left to shadow).
  static std::shared_ptr<SortedRun> MergeRuns(
      const std::vector<std::shared_ptr<SortedRun>>& runs,
      bool drop_tombstones);

  const LsmOptions options_;
  mutable common::Mutex mutex_{common::LockRank::kLsmIndex};
  common::CondVar maintenance_cv_;  // wakes the maintenance thread
  common::CondVar drained_cv_;      // wakes Drain()/stalled inserts
  Memtable memtable_ GUARDED_BY(mutex_);
  size_t memtable_bytes_ GUARDED_BY(mutex_) = 0;
  /// Sealed memtables awaiting background flush, oldest first.
  std::deque<std::shared_ptr<const Memtable>> immutables_ GUARDED_BY(mutex_);
  /// Byte sizes parallel to immutables_ (each element is the governor
  /// charge the sealed memtable still holds; released when its run
  /// lands). Mutated in lockstep with immutables_.
  std::deque<size_t> immutable_bytes_ GUARDED_BY(mutex_);
  /// Newest run last.
  std::vector<std::shared_ptr<SortedRun>> runs_ GUARDED_BY(mutex_);
  LsmStats stats_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  bool maintenance_running_ GUARDED_BY(mutex_) = false;
  std::thread maintenance_;  // started in the ctor, joined in Close()
  // Resolved governor pools (options_ pools or the Default() governor's
  // standard pools). Reserve/Release are lock-free (safe under mutex_).
  common::MemPool* memtable_pool_ = nullptr;
  common::MemPool* merge_pool_ = nullptr;  // set once in ctor, then read-only

  // Cached process-wide registry metrics, resolved once in the
  // constructor. All operations on them are relaxed atomics, so they are
  // safe to touch from the maintenance thread and under mutex_ alike.
  common::Counter* metric_flushes_ = nullptr;
  common::Counter* metric_merges_ = nullptr;
  common::Histogram* metric_flush_duration_us_ = nullptr;
  common::Histogram* metric_merge_duration_us_ = nullptr;
  /// Sealed memtables awaiting background flush across all LsmIndex
  /// instances in the process (+1 at seal, -1 when the run lands).
  common::Gauge* metric_flush_backlog_ = nullptr;
};

/// Hash-partitioned LSM index: keys are spread across N independent
/// LsmIndex partitions, each with its own mutex and maintenance thread, so
/// concurrent writers (feed store operators, parallel loaders) do not
/// contend (the paper's partitioned parallelism, Chapter 7).
class PartitionedLsmIndex {
 public:
  explicit PartitionedLsmIndex(LsmOptions options = {});

  [[nodiscard]] common::Status Insert(const std::string& key, adm::Value value);
  [[nodiscard]] common::Status Delete(const std::string& key);
  std::optional<adm::Value> Get(const std::string& key) const;

  /// Visits every live (key, value) pair in global key order (k-way merge
  /// of the per-partition scans; partitions hold disjoint key sets).
  void Scan(const std::function<void(const std::string&,
                                     const adm::Value&)>& visitor) const;

  int64_t Size() const;
  void Flush();
  void Drain();
  void Close();

  /// Aggregated over partitions (keys are disjoint, so sums are exact).
  LsmStats stats() const;
  size_t run_count() const;
  size_t flush_backlog() const;
  size_t merge_backlog() const;

  size_t partition_count() const { return partitions_.size(); }
  LsmIndex& partition(size_t i) { return *partitions_[i]; }
  const LsmIndex& partition(size_t i) const { return *partitions_[i]; }
  /// Index of the partition owning `key`.
  size_t PartitionOf(const std::string& key) const;

 private:
  std::vector<std::unique_ptr<LsmIndex>> partitions_;
};

}  // namespace storage
}  // namespace asterix

