// LSM-style primary index: an in-memory memtable absorbing writes, flushed
// into immutable sorted runs when full, with runs merged when their count
// exceeds a threshold. AsterixDB stores datasets as partitioned LSM-based
// B+-trees; this component reproduces that write path's cost structure
// (cheap inserts, periodic flush/merge work).
#ifndef ASTERIX_STORAGE_LSM_INDEX_H_
#define ASTERIX_STORAGE_LSM_INDEX_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace storage {

/// Immutable sorted component produced by a memtable flush or a merge.
class SortedRun {
 public:
  using Entry = std::pair<std::string, adm::Value>;

  explicit SortedRun(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  const adm::Value* Get(const std::string& key) const;
  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;  // sorted by key, unique keys
};

struct LsmOptions {
  /// Memtable flush threshold (approximate payload bytes).
  size_t memtable_bytes_limit = 4 << 20;
  /// Merge all runs into one when the run count reaches this.
  size_t max_runs = 8;
};

struct LsmStats {
  int64_t inserts = 0;
  int64_t flushes = 0;
  int64_t merges = 0;
  int64_t live_keys = 0;
};

/// Thread-safe LSM index mapping encoded keys to ADM values (upsert
/// semantics: the newest write for a key wins).
class LsmIndex {
 public:
  explicit LsmIndex(LsmOptions options = {}) : options_(options) {}

  common::Status Insert(const std::string& key, adm::Value value);

  /// Point lookup across memtable + runs (newest component wins).
  std::optional<adm::Value> Get(const std::string& key) const;

  /// Visits every live (key, value) pair in key order.
  void Scan(const std::function<void(const std::string&,
                                     const adm::Value&)>& visitor) const;

  /// Number of live (distinct) keys.
  int64_t Size() const;

  /// Forces a memtable flush (used by tests and shutdown paths).
  void Flush();

  LsmStats stats() const;
  size_t run_count() const;

 private:
  void FlushLocked();
  void MergeLocked();

  const LsmOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, adm::Value> memtable_;
  size_t memtable_bytes_ = 0;
  /// Newest run last.
  std::vector<std::shared_ptr<SortedRun>> runs_;
  LsmStats stats_;
};

}  // namespace storage
}  // namespace asterix

#endif  // ASTERIX_STORAGE_LSM_INDEX_H_
