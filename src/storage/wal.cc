#include "common/thread_annotations.h"
#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"

namespace asterix {
namespace storage {

using common::Status;

Wal::Wal(std::string path, bool durable, common::MemPool* wal_pool)
    : path_(std::move(path)),
      durable_(durable),
      wal_pool_(wal_pool != nullptr
                    ? wal_pool
                    : common::MemGovernor::Default().GetPool(
                          common::MemGovernor::kWalPool)) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Default();
  metric_appends_ = reg.GetCounter("wal_appends_total");
  metric_bytes_ = reg.GetCounter("wal_bytes_written_total");
  metric_syncs_ = reg.GetCounter("wal_syncs_total");
  metric_sync_latency_us_ = reg.GetHistogram("wal_sync_latency_us");
}

Wal::~Wal() {
  common::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status Wal::Open() {
  common::MutexLock lock(mutex_);
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open WAL at " + path_);
  }
  return Status::OK();
}

Status Wal::Append(const std::string& payload) {
  // Before any byte lands: an injected append failure must leave the log
  // unchanged so the caller can retry (the at-least-once replay path).
  ASTERIX_FAILPOINT("storage.wal.append");
  // Governor admission for the framed entry, held for the append's
  // duration (RAII covers every return path below). Exhaustion — real or
  // injected via common.memgov.reserve on the "wal" pool — is a soft
  // fault the retry/replay machinery already absorbs.
  common::MemLease lease;
  if (wal_pool_ != nullptr) {
    Status admitted =
        wal_pool_->TryLease(sizeof(uint32_t) + payload.size(), &lease);
    if (!admitted.ok()) return admitted;
  }
  common::MutexLock lock(mutex_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL not open: " + path_);
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (std::fwrite(&len, sizeof(len), 1, file_) != 1 ||
      (len > 0 &&
       std::fwrite(payload.data(), 1, len, file_) != len)) {
    return Status::IOError("WAL append failed: " + path_);
  }
  if (durable_) {
    common::Stopwatch timer;
    if (std::fflush(file_) != 0) {
      return Status::IOError("WAL flush failed: " + path_);
    }
    metric_sync_latency_us_->Record(timer.ElapsedMicros());
    metric_syncs_->Add(1);
  }
  ++entry_count_;
  bytes_written_ += sizeof(len) + len;
  metric_appends_->Add(1);
  metric_bytes_->Add(sizeof(len) + len);
  return Status::OK();
}

Status Wal::Sync() {
  ASTERIX_FAILPOINT("storage.wal.sync");
  common::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    common::Stopwatch timer;
    if (std::fflush(file_) != 0) {
      return Status::IOError("WAL sync failed: " + path_);
    }
    metric_sync_latency_us_->Record(timer.ElapsedMicros());
    metric_syncs_->Add(1);
  }
  return Status::OK();
}

Status Wal::Replay(
    const std::function<void(const std::string&)>& consumer) const {
  common::MutexLock lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open WAL for replay: " + path_);
  }
  std::vector<char> buf;
  while (true) {
    uint32_t len = 0;
    size_t got = std::fread(&len, sizeof(len), 1, in);
    if (got != 1) break;  // clean EOF or torn tail; stop
    buf.resize(len);
    if (len > 0 && std::fread(buf.data(), 1, len, in) != len) {
      break;  // torn entry at tail; ignore (standard WAL recovery)
    }
    consumer(std::string(buf.data(), len));
  }
  std::fclose(in);
  return Status::OK();
}

int64_t Wal::entry_count() const {
  common::MutexLock lock(mutex_);
  return entry_count_;
}

int64_t Wal::bytes_written() const {
  common::MutexLock lock(mutex_);
  return bytes_written_;
}

}  // namespace storage
}  // namespace asterix
