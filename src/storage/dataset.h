// Datasets: named collections of ADM records hash-partitioned by primary
// key across the nodes of a nodegroup. Each node-local partition is itself
// a hash-partitioned LSM primary index (independent sub-partitions with
// background flush/merge) plus co-located secondary indexes, fronted by a
// WAL.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/datatype.h"
#include "adm/value.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/lsm_index.h"
#include "storage/secondary_index.h"
#include "storage/wal.h"

namespace asterix {
namespace storage {

struct IndexDef {
  std::string name;
  std::string field;
  IndexKind kind = IndexKind::kBTree;
};

/// Dataset metadata, as recorded in the Metadata catalog.
struct DatasetDef {
  std::string name;
  std::string datatype;          // record type of stored records
  std::string primary_key_field;
  std::vector<IndexDef> indexes;
  /// Nodes hosting a partition. Empty = all cluster nodes (the AsterixDB
  /// default nodegroup).
  std::vector<std::string> nodegroup;
  /// Validate records against `datatype` on insert.
  bool validate_type = false;
  /// Flush the WAL on every insert (durability knob).
  bool durable_writes = false;
  /// Storage write-path knobs for this dataset's primary index (hash
  /// partition count, memtable size, async maintenance).
  LsmOptions lsm;
};

/// One node-local partition of a dataset.
class DatasetPartition {
 public:
  /// `dir` is the node-local storage directory for WAL files.
  DatasetPartition(DatasetDef def, int partition_id, std::string dir,
                   const adm::TypeRegistry* types);

  [[nodiscard]] common::Status Open();

  /// Inserts (upserts) one record: WAL append, primary index insert,
  /// secondary index maintenance. Thread-safe.
  [[nodiscard]] common::Status Insert(const adm::Value& record);

  /// Point lookup by primary key value.
  [[nodiscard]] common::Result<adm::Value> Get(const adm::Value& primary_key) const;

  /// Visits all records in primary key order.
  void Scan(const std::function<void(const adm::Value&)>& visitor) const;

  int64_t record_count() const { return primary_.Size(); }
  int64_t inserts() const { return inserts_.load(); }

  /// Adds a secondary index to a live partition, backfilling it from
  /// the primary index (the `create index` DDL after data has arrived).
  [[nodiscard]] common::Status AddIndex(const IndexDef& index_def);

  PartitionedLsmIndex& primary() { return primary_; }
  const PartitionedLsmIndex& primary() const { return primary_; }
  const Wal& wal() const { return wal_; }
  /// Flushes buffered WAL entries to the OS.
  [[nodiscard]] common::Status SyncWal() { return wal_.Sync(); }
  SecondaryIndex* FindIndex(const std::string& index_name) const;
  const DatasetDef& def() const { return def_; }
  int partition_id() const { return partition_id_; }

 private:
  const DatasetDef def_;
  const int partition_id_;
  const adm::TypeRegistry* types_;
  Wal wal_;
  PartitionedLsmIndex primary_;
  mutable common::Mutex indexes_mutex_{common::LockRank::kDatasetIndexes};  // guards secondaries_ membership
  std::vector<std::unique_ptr<SecondaryIndex>> secondaries_
      GUARDED_BY(indexes_mutex_);
  std::atomic<int64_t> inserts_{0};
};

/// Per-node storage manager: owns this node's partitions of every dataset.
class StorageManager {
 public:
  StorageManager(std::string node_id, std::string base_dir);

  /// Creates (opens) this node's partition of `def` with id `partition_id`.
  [[nodiscard]] common::Status CreatePartition(const DatasetDef& def, int partition_id,
                                 const adm::TypeRegistry* types);

  /// This node's partition of `dataset`, or nullptr.
  DatasetPartition* GetPartition(const std::string& dataset) const;

  [[nodiscard]] common::Status DropPartition(const std::string& dataset);

  const std::string& node_id() const { return node_id_; }
  std::vector<std::string> DatasetNames() const;

 private:
  const std::string node_id_;
  const std::string base_dir_;
  mutable common::Mutex mutex_{common::LockRank::kStorageManager};
  std::map<std::string, std::unique_ptr<DatasetPartition>> partitions_
      GUARDED_BY(mutex_);
};

/// Index of the partition (within `num_partitions`) that owns `key`.
int PartitionOfKey(const std::string& encoded_key, int num_partitions);

/// Cluster-wide dataset metadata: definitions plus the resolved nodegroup
/// (the ordered node list hosting partitions 0..n-1).
class DatasetCatalog {
 public:
  struct Entry {
    DatasetDef def;
    std::vector<std::string> nodegroup;  // node of partition i
  };

  [[nodiscard]] common::Status Register(DatasetDef def,
                          std::vector<std::string> nodegroup);
  [[nodiscard]] common::Result<Entry> Find(const std::string& name) const;
  /// Records a secondary index added after dataset creation.
  [[nodiscard]] common::Status AddIndex(const std::string& dataset,
                          const IndexDef& index_def);
  std::vector<std::string> Names() const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kDatasetCatalog};
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace storage
}  // namespace asterix

