#include "common/thread_annotations.h"
#include "storage/secondary_index.h"

#include <cmath>

#include "storage/key.h"

namespace asterix {
namespace storage {

using common::Status;

Status BTreeSecondaryIndex::Insert(const adm::Value& record,
                                   const std::string& primary_key) {
  const adm::Value* v = record.GetField(field());
  if (v == nullptr || v->is_null()) return Status::OK();  // optional field
  auto key = EncodeKey(*v);
  if (!key.ok()) {
    return Status::InvalidArgument("secondary index '" + name() +
                                   "': " + key.status().message());
  }
  common::MutexLock lock(mutex_);
  entries_.emplace(std::move(key).value(), primary_key);
  return Status::OK();
}

int64_t BTreeSecondaryIndex::entry_count() const {
  common::MutexLock lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

std::vector<std::string> BTreeSecondaryIndex::SearchExact(
    const adm::Value& v) const {
  std::vector<std::string> out;
  auto key = EncodeKey(v);
  if (!key.ok()) return out;
  common::MutexLock lock(mutex_);
  auto [lo, hi] = entries_.equal_range(key.value());
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<std::string> BTreeSecondaryIndex::SearchRange(
    const adm::Value& lo_v, const adm::Value& hi_v) const {
  std::vector<std::string> out;
  auto lo_key = EncodeKey(lo_v);
  auto hi_key = EncodeKey(hi_v);
  if (!lo_key.ok() || !hi_key.ok()) return out;
  common::MutexLock lock(mutex_);
  auto it = entries_.lower_bound(lo_key.value());
  auto end = entries_.upper_bound(hi_key.value());
  for (; it != end; ++it) out.push_back(it->second);
  return out;
}

std::pair<int64_t, int64_t> SpatialGridIndex::CellOf(
    const adm::Point& p) const {
  return {static_cast<int64_t>(std::floor(p.x / cell_size_)),
          static_cast<int64_t>(std::floor(p.y / cell_size_))};
}

Status SpatialGridIndex::Insert(const adm::Value& record,
                                const std::string& primary_key) {
  const adm::Value* v = record.GetField(field());
  if (v == nullptr || v->is_null()) return Status::OK();
  if (v->tag() != adm::TypeTag::kPoint) {
    return Status::InvalidArgument("spatial index '" + name() +
                                   "' requires a point field");
  }
  const adm::Point& p = v->AsPoint();
  common::MutexLock lock(mutex_);
  cells_[CellOf(p)].emplace_back(p, primary_key);
  ++entry_count_;
  return Status::OK();
}

int64_t SpatialGridIndex::entry_count() const {
  common::MutexLock lock(mutex_);
  return entry_count_;
}

std::vector<std::string> SpatialGridIndex::SearchRect(
    const Rect& rect) const {
  std::vector<std::string> out;
  int64_t cx_min = static_cast<int64_t>(std::floor(rect.x_min / cell_size_));
  int64_t cx_max = static_cast<int64_t>(std::floor(rect.x_max / cell_size_));
  int64_t cy_min = static_cast<int64_t>(std::floor(rect.y_min / cell_size_));
  int64_t cy_max = static_cast<int64_t>(std::floor(rect.y_max / cell_size_));
  common::MutexLock lock(mutex_);
  // Visit only the cells overlapping the query rectangle.
  auto it = cells_.lower_bound({cx_min, cy_min});
  for (; it != cells_.end() && it->first.first <= cx_max; ++it) {
    if (it->first.second < cy_min || it->first.second > cy_max) continue;
    for (const auto& [point, pk] : it->second) {
      if (rect.Contains(point)) out.push_back(pk);
    }
  }
  return out;
}

std::vector<std::pair<adm::Point, std::string>>
SpatialGridIndex::SearchRectEntries(const Rect& rect) const {
  std::vector<std::pair<adm::Point, std::string>> out;
  int64_t cx_min = static_cast<int64_t>(std::floor(rect.x_min / cell_size_));
  int64_t cx_max = static_cast<int64_t>(std::floor(rect.x_max / cell_size_));
  int64_t cy_min = static_cast<int64_t>(std::floor(rect.y_min / cell_size_));
  int64_t cy_max = static_cast<int64_t>(std::floor(rect.y_max / cell_size_));
  common::MutexLock lock(mutex_);
  auto it = cells_.lower_bound({cx_min, cy_min});
  for (; it != cells_.end() && it->first.first <= cx_max; ++it) {
    if (it->first.second < cy_min || it->first.second > cy_max) continue;
    for (const auto& entry : it->second) {
      if (rect.Contains(entry.first)) out.push_back(entry);
    }
  }
  return out;
}

std::unique_ptr<SecondaryIndex> MakeSecondaryIndex(IndexKind kind,
                                                   std::string name,
                                                   std::string field) {
  if (kind == IndexKind::kRTree) {
    return std::make_unique<SpatialGridIndex>(std::move(name),
                                              std::move(field));
  }
  return std::make_unique<BTreeSecondaryIndex>(std::move(name),
                                               std::move(field));
}

}  // namespace storage
}  // namespace asterix
