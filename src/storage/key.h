// Order-preserving key encoding. Primary keys are ADM primitives; encoding
// them into byte strings whose lexicographic order matches the value order
// lets the LSM components store keys uniformly.
#pragma once

#include <string>

#include "adm/value.h"
#include "common/result.h"

namespace asterix {
namespace storage {

/// Encodes a primitive ADM value (int64, double, string, datetime) into an
/// order-preserving byte string. Keys of different type tags order by tag.
[[nodiscard]] common::Result<std::string> EncodeKey(const adm::Value& v);

/// Decodes a key produced by EncodeKey back into its ADM value.
[[nodiscard]] common::Result<adm::Value> DecodeKey(const std::string& key);

}  // namespace storage
}  // namespace asterix

