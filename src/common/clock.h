// Time helpers. Experiments in the paper run for minutes of wall clock; the
// benches here time-scale the same workload shapes down to seconds, so all
// timing flows through these helpers for consistency.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace asterix {
namespace common {

/// Milliseconds since an arbitrary steady epoch.
inline int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Microseconds since an arbitrary steady epoch.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void SleepMillis(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

inline void SleepMicros(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Elapsed-time measurement with millisecond/microsecond readouts.
class Stopwatch {
 public:
  Stopwatch() : start_us_(NowMicros()) {}
  void Reset() { start_us_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_us_; }
  int64_t ElapsedMillis() const { return ElapsedMicros() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_us_;
};

}  // namespace common
}  // namespace asterix

