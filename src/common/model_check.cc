#include "common/model_check.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

// Engine layout (see the header and DESIGN.md §6.3 for the model):
//
//   * Real std::threads, cooperative execution: a spawned thread runs
//     user code freely until it reaches a shim operation, announces the
//     op descriptor, and parks. The scheduler (the controlling thread,
//     inside Execution::Join) waits until every live thread is parked
//     or finished, picks one announced op — consulting the DFS trail —
//     executes ALL model bookkeeping itself (single-threaded, under the
//     engine mutex), deposits the result, and wakes exactly that
//     thread. Strict alternation: at most one thread touches user or
//     engine state at any instant, so the engine needs no fine-grained
//     synchronization and every execution is deterministic.
//
//   * The DFS trail is a vector of (chosen, num_options) decisions —
//     scheduling picks AND value picks (which store a load reads, CAS
//     outcome). Backtracking bumps the deepest non-exhausted decision
//     and replays the prefix; when no decision can be bumped the space
//     is exhausted. Decisions with one option are not recorded.
//
//   * Sleep sets prune equivalent interleavings: after exploring thread
//     t at a choice point, sibling branches put t to sleep until an op
//     DEPENDENT on t's pending op executes. Dependence is conservative
//     (shared object, or both seq_cst), so pruning never hides a bug.
//
//   * Weak memory: per-location modification-order store history (store
//     order = scheduler order — an intentional restriction, see the
//     DESIGN notes on what the model cannot prove). A load may read any
//     store at or above its coherence floor: the newest store already
//     happened-before the reader, the reader's own previous read
//     (read-read coherence), and — for seq_cst loads — the newest
//     seq_cst store to the location. A bounded staleness cap (a thread
//     may re-read the same stale store at most kMaxStaleReads times
//     before the floor rises) models "stores become visible eventually"
//     and keeps retry loops finite. Acquire loads join the store's
//     release clock into the reader's vector clock; relaxed loads bank
//     it for a later acquire fence. RMWs read the latest store and
//     inherit its release clock into their own store (release
//     sequences). seq_cst stores/RMWs/fences join bidirectionally with
//     a global SC clock; seq_cst loads deliberately do NOT (they
//     compile to plain loads on x86 — modelling the exact StoreLoad
//     hazard behind the EventCount lost-wakeup bug).
//
//   * Virtual time: SteadyNow() reads a clock that advances only when
//     every thread is blocked, jumping to the earliest timed-wait
//     deadline. All blocked with no deadline = deadlock, reported with
//     the full trace.

namespace asterix {
namespace mc {

namespace {

struct ExecutionAbort {};

constexpr int kMaxStaleReads = 2;

struct VClock {
  std::array<uint32_t, kMaxThreads> c{};
  void Join(const VClock& o) {
    for (int i = 0; i < kMaxThreads; ++i) c[i] = std::max(c[i], o.c[i]);
  }
  // True iff the event (tid, tick) happened-before a point with this
  // clock.
  bool Knows(int tid, uint32_t tick) const { return c[tid] >= tick; }
};

struct Store {
  uint64_t value = 0;
  int tid = 0;
  uint32_t tick = 0;
  VClock rel;  // release clock carried to acquirers
  bool sc = false;
};

struct Location {
  int label = 0;
  std::vector<Store> stores;
  struct PerThread {
    int floor = 0;          // read-read coherence floor (store index)
    int reads_at_floor = 0;  // staleness cap counter
  };
  std::array<PerThread, kMaxThreads> pt{};
  int last_sc = -1;  // index of newest seq_cst store
};

struct DataCellState {
  int label = 0;
  int last_writer = -1;
  uint32_t write_tick = 0;
  std::array<uint32_t, kMaxThreads> read_ticks{};
};

struct MutexState {
  int label = 0;
  int holder = -1;
  VClock rel;
};

enum class OpKind : uint8_t {
  kLoad,
  kStore,
  kRmw,
  kCas,
  kFence,
  kDataRead,
  kDataWrite,
  kMutexLock,
  kMutexUnlock,
  kCvWaitRelease,
  kCvReacquire,
  kCvNotify,
  kSpinBlock,
  kYield,
};

struct PendingOp {
  OpKind kind = OpKind::kFence;
  const void* obj = nullptr;   // atomic location / cell / mutex / cv
  const void* obj2 = nullptr;  // the mutex of a cv op
  std::memory_order mo = std::memory_order_seq_cst;
  std::memory_order fail_mo = std::memory_order_seq_cst;
  Rmw rmw = Rmw::kExchange;
  uint64_t arg = 0;    // store value / rmw operand / cas desired / spin observed
  uint64_t arg2 = 0;   // cas expected
  uint64_t init = 0;   // location's pre-model value for lazy registration
  bool weak = false;
  bool timed = false;
  int64_t deadline_ns = 0;
  uint64_t* plain = nullptr;  // pass-through mirror to keep coherent
  // Results (deposited by the scheduler before the grant):
  uint64_t result = 0;
  bool result_b = false;
};

struct TraceRec {
  int tid;
  PendingOp op;
  int64_t vtime_ns;
};

struct ThreadState {
  // Scheduler<->worker protocol (all fields under Engine::mu_).
  std::condition_variable cv;
  std::function<void()> fn;
  bool start = false;
  bool done = true;
  bool has_pending = false;
  bool granted = false;
  PendingOp op;
  // CondVar wait state (mutated by other threads' notify ops).
  const void* waiting_cv = nullptr;
  bool cv_signaled = false;
  bool cv_timed_out = false;
  bool cv_timed = false;
  int64_t cv_deadline_ns = 0;
  // Memory model state.
  VClock clock;
  VClock acq_pending;  // banked release clocks of relaxed loads
  VClock rel_fence;    // clock at the latest release fence
};

bool IsAcquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}
bool IsRelease(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kCas: return "cas";
    case OpKind::kFence: return "fence";
    case OpKind::kDataRead: return "data_read";
    case OpKind::kDataWrite: return "data_write";
    case OpKind::kMutexLock: return "mutex_lock";
    case OpKind::kMutexUnlock: return "mutex_unlock";
    case OpKind::kCvWaitRelease: return "cv_wait";
    case OpKind::kCvReacquire: return "cv_wake";
    case OpKind::kCvNotify: return "cv_notify";
    case OpKind::kSpinBlock: return "spin_park";
    case OpKind::kYield: return "yield";
  }
  return "?";
}

const char* OrderName(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "ar";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

class Engine;
Engine* g_engine = nullptr;
thread_local int t_tid = -1;

class Engine {
 public:
  explicit Engine(const Options& opts) : opts_(opts) {}

  ~Engine() {
    {
      std::lock_guard<std::mutex> l(mu_);
      shutdown_ = true;
      for (auto& th : th_) th.cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- outer DFS loop ------------------------------------------------

  Result Run(const std::function<void(Execution&)>& body) {
    ParseReplay(opts_.replay);
    Result res;
    for (;;) {
      if (res.executions >= opts_.max_executions) {
        res.ok = failure_.empty();
        res.complete = false;
        break;
      }
      BeginExecution();
      try {
        Execution ex;
        body(ex);
        ex.Join();  // harmless if the body already joined
      } catch (ExecutionAbort&) {
      }
      ++res.executions;
      if (!failure_.empty()) {
        res.ok = false;
        res.failure = failure_;
        res.trace = RenderTrace();
        res.replay = RenderReplay();
        break;
      }
      if (!opts_.replay.empty()) {  // replay mode: exactly one execution
        res.ok = true;
        res.complete = false;
        break;
      }
      if (!Backtrack()) {
        res.ok = true;
        res.complete = true;
        break;
      }
    }
    return res;
  }

  // ---- per-execution lifecycle --------------------------------------

  void BeginExecution() {
    std::lock_guard<std::mutex> l(mu_);
    locs_.clear();
    cells_.clear();
    mutexes_.clear();
    labels_ = 0;
    sc_clock_ = VClock{};
    vtime_ns_ = 0;
    steps_ = 0;
    depth_ = 0;
    sleep_mask_ = 0;
    yield_mask_ = 0;
    exec_over_ = false;
    failing_ = false;
    pruned_ = false;
    failure_.clear();
    trace_.clear();
    nthreads_ = 1;
    for (int i = 0; i < kMaxThreads; ++i) {
      th_[i].done = (i != 0);
      th_[i].has_pending = false;
      th_[i].granted = false;
      th_[i].start = false;
      th_[i].waiting_cv = nullptr;
      th_[i].cv_signaled = th_[i].cv_timed_out = th_[i].cv_timed = false;
      th_[i].clock = VClock{};
      th_[i].acq_pending = VClock{};
      th_[i].rel_fence = VClock{};
      // Thread ids double as vector-clock slots; tick 0 of every thread
      // is "before the beginning", so the initial pseudo-store of each
      // lazily registered location happens-before everything.
      th_[i].clock.c[i] = 1;
    }
  }

  void RunJoin(std::vector<std::function<void()>>* fns) {
    {
      std::unique_lock<std::mutex> l(mu_);
      if (static_cast<int>(fns->size()) + 1 > kMaxThreads) {
        FailLocked("Execution::Spawn: too many threads (max " +
                   std::to_string(kMaxThreads - 1) + ")");
        throw ExecutionAbort{};
      }
      nthreads_ = static_cast<int>(fns->size()) + 1;
      EnsureWorkersLocked(nthreads_ - 1);
      for (int i = 1; i < nthreads_; ++i) {
        // Thread start synchronizes-with the spawn: the child sees
        // everything the spawner did.
        th_[i].clock.Join(th_[0].clock);
        th_[i].fn = std::move((*fns)[i - 1]);
        th_[i].done = false;
        th_[i].start = true;
        th_[i].cv.notify_one();
      }
      fns->clear();
      Schedule(l);
      // std::thread::join analogue: the controlling thread observes
      // everything every worker did.
      for (int i = 1; i < nthreads_; ++i) {
        th_[0].clock.Join(th_[i].clock);
        th_[0].clock.Join(th_[i].acq_pending);
      }
    }
    if (failing_ || pruned_) throw ExecutionAbort{};
  }

  // ---- scheduler -----------------------------------------------------

  void Schedule(std::unique_lock<std::mutex>& l) {
    for (;;) {
      sched_cv_.wait(l, [&] {
        if (failing_) return true;
        for (int i = 1; i < nthreads_; ++i) {
          if (!th_[i].done && !th_[i].has_pending) return false;
        }
        return true;
      });
      if (failing_) {
        AbortWorkersLocked(l);
        return;
      }
      bool all_done = true;
      for (int i = 1; i < nthreads_; ++i) all_done &= th_[i].done;
      if (all_done) return;

      int enabled[kMaxThreads];
      int nenabled = 0;
      for (int i = 1; i < nthreads_; ++i) {
        if (!th_[i].done && th_[i].has_pending && EnabledLocked(i)) {
          enabled[nenabled++] = i;
        }
      }
      if (nenabled == 0) {
        if (AdvanceTimeLocked()) continue;
        FailDeadlockLocked();
        AbortWorkersLocked(l);
        return;
      }
      // Yield fairness: a thread that executed kYield is in a spin loop
      // that cannot progress until someone else writes. Keep it off the
      // schedule while any non-yielded thread is enabled; with everyone
      // yielded (or only yielders left), let them run — a genuinely
      // stuck spin then trips the step bound and reports a livelock.
      {
        int active[kMaxThreads];
        int nactive = 0;
        for (int k = 0; k < nenabled; ++k) {
          if (!(yield_mask_ & (1u << enabled[k]))) active[nactive++] = enabled[k];
        }
        if (nactive > 0) {
          for (int k = 0; k < nactive; ++k) enabled[k] = active[k];
          nenabled = nactive;
        }
      }
      int options[kMaxThreads];
      int noptions = 0;
      for (int k = 0; k < nenabled; ++k) {
        if (!(sleep_mask_ & (1u << enabled[k]))) options[noptions++] = enabled[k];
      }
      if (noptions == 0) {
        // Every enabled thread is asleep: this interleaving is a
        // reordering of an already-explored one. Prune.
        pruned_ = true;
        exec_over_ = true;
        AbortWorkersLocked(l);
        return;
      }
      int choice = Choose(noptions);
      int t = options[choice];
      // Earlier siblings sleep inside this subtree until a dependent op
      // runs.
      for (int k = 0; k < choice; ++k) sleep_mask_ |= 1u << options[k];
      PendingOp executed = th_[t].op;
      ExecuteOp(t, &th_[t].op);
      if (failing_) {
        AbortWorkersLocked(l);
        return;
      }
      executed.result = th_[t].op.result;
      // Yield bookkeeping: reads cannot unstick a spinner, so only a
      // write-ish op (store/rmw/cas/mutex/cv traffic) clears the yield
      // set; a kYield adds its thread.
      switch (executed.kind) {
        case OpKind::kYield:
          yield_mask_ |= 1u << t;
          break;
        case OpKind::kLoad:
        case OpKind::kDataRead:
        case OpKind::kFence:
        case OpKind::kSpinBlock:
          break;
        default:
          yield_mask_ = 0;
          break;
      }
      for (int u = 1; u < nthreads_; ++u) {
        if ((sleep_mask_ & (1u << u)) && th_[u].has_pending &&
            Conflicts(th_[u].op, executed)) {
          sleep_mask_ &= ~(1u << u);
        }
      }
      th_[t].has_pending = false;
      th_[t].granted = true;
      th_[t].cv.notify_one();
    }
  }

  // An op a worker announced; parks until the scheduler grants (or the
  // execution is being torn down).
  void AnnounceAndWait(PendingOp* op) {
    std::unique_lock<std::mutex> l(mu_);
    ThreadState& th = th_[t_tid];
    th.op = *op;
    th.has_pending = true;
    sched_cv_.notify_one();
    th.cv.wait(l, [&] { return th.granted || exec_over_; });
    if (th.granted) {
      th.granted = false;
      *op = th.op;
      return;
    }
    throw ExecutionAbort{};
  }

  // Thread-0 ops outside Join run single-threaded but still feed the
  // model (their coherence floor pins them to the latest store, so no
  // decision branches).
  void ExecuteInline(PendingOp* op) {
    std::lock_guard<std::mutex> l(mu_);
    ExecuteOp(0, op);
    if (failing_) throw ExecutionAbort{};
  }

  // ---- enabledness / time -------------------------------------------

  bool EnabledLocked(int tid) {
    const PendingOp& op = th_[tid].op;
    switch (op.kind) {
      case OpKind::kMutexLock:
        return MutexOf(op.obj).holder == -1;
      case OpKind::kCvReacquire:
        return (th_[tid].cv_signaled || th_[tid].cv_timed_out) &&
               MutexOf(op.obj2).holder == -1;
      case OpKind::kSpinBlock:
        return LocOf(op.obj, op.init).stores.back().value != op.arg;
      default:
        return true;
    }
  }

  bool AdvanceTimeLocked() {
    int64_t next = INT64_MAX;
    for (int i = 1; i < nthreads_; ++i) {
      ThreadState& th = th_[i];
      if (!th.done && th.has_pending && th.op.kind == OpKind::kCvReacquire &&
          th.cv_timed && !th.cv_signaled && !th.cv_timed_out) {
        next = std::min(next, th.cv_deadline_ns);
      }
    }
    if (next == INT64_MAX) return false;
    vtime_ns_ = std::max(vtime_ns_, next);
    for (int i = 1; i < nthreads_; ++i) {
      ThreadState& th = th_[i];
      if (!th.done && th.has_pending && th.op.kind == OpKind::kCvReacquire &&
          th.cv_timed && !th.cv_signaled && th.cv_deadline_ns <= vtime_ns_) {
        th.cv_timed_out = true;
      }
    }
    return true;
  }

  // ---- the model -----------------------------------------------------

  void ExecuteOp(int tid, PendingOp* op) {
    if (++steps_ > opts_.max_steps) {
      FailLocked("livelock: execution exceeded " +
                 std::to_string(opts_.max_steps) + " steps");
      return;
    }
    ThreadState& th = th_[tid];
    ++th.clock.c[tid];
    trace_.push_back(TraceRec{tid, *op, vtime_ns_});
    switch (op->kind) {
      case OpKind::kLoad: {
        Location& loc = LocOf(op->obj, op->init);
        int idx = PickReadable(loc, tid, op->mo);
        ApplyLoad(loc, tid, idx, op->mo);
        op->result = loc.stores[idx].value;
        break;
      }
      case OpKind::kStore: {
        Location& loc = LocOf(op->obj, op->init);
        DoStore(loc, tid, op->arg, op->mo, /*inherit=*/nullptr);
        if (op->plain != nullptr) *op->plain = op->arg;
        break;
      }
      case OpKind::kRmw: {
        Location& loc = LocOf(op->obj, op->init);
        const Store latest = loc.stores.back();
        uint64_t newv = 0;
        switch (op->rmw) {
          case Rmw::kExchange: newv = op->arg; break;
          case Rmw::kAdd: newv = latest.value + op->arg; break;
          case Rmw::kSub: newv = latest.value - op->arg; break;
        }
        ApplyLoad(loc, tid, static_cast<int>(loc.stores.size()) - 1, op->mo);
        DoStore(loc, tid, newv, op->mo, &latest.rel);
        if (op->plain != nullptr) *op->plain = newv;
        op->result = latest.value;
        break;
      }
      case OpKind::kCas: {
        Location& loc = LocOf(op->obj, op->init);
        const int n = static_cast<int>(loc.stores.size());
        const bool latest_match = loc.stores[n - 1].value == op->arg2;
        // Options, natural path first: [success if latest matches] then
        // failure reading each coherently-readable store whose value
        // differs from `expected`, newest first. (A weak CAS's spurious
        // failure re-reading `expected` is deliberately NOT explored:
        // it only re-runs the caller's retry loop and would make the
        // DFS infinite.)
        int lo = ReadFloor(loc, tid, op->fail_mo);
        int fails[64];
        int nfails = 0;
        for (int i = n - 1; i >= lo && nfails < 64; --i) {
          if (loc.stores[i].value != op->arg2) fails[nfails++] = i;
        }
        int total = (latest_match ? 1 : 0) + nfails;
        if (total == 0) {
          // Nothing readable differs and latest doesn't match: can only
          // happen when latest matches — guarded above. Defensive:
          FailLocked("internal: CAS with no outcome");
          return;
        }
        int choice = Choose(total);
        if (latest_match && choice == 0) {
          const Store latest = loc.stores[n - 1];
          ApplyLoad(loc, tid, n - 1, op->mo);
          DoStore(loc, tid, op->arg, op->mo, &latest.rel);
          if (op->plain != nullptr) *op->plain = op->arg;
          op->result_b = true;
        } else {
          int idx = fails[choice - (latest_match ? 1 : 0)];
          ApplyLoad(loc, tid, idx, op->fail_mo);
          op->arg2 = loc.stores[idx].value;
          op->result_b = false;
        }
        break;
      }
      case OpKind::kFence: {
        if (IsAcquire(op->mo)) th.clock.Join(th.acq_pending);
        if (op->mo == std::memory_order_seq_cst) {
          sc_clock_.Join(th.clock);
          th.clock.Join(sc_clock_);
        }
        if (IsRelease(op->mo)) th.rel_fence = th.clock;
        break;
      }
      case OpKind::kDataRead: {
        DataCellState& cell = CellOf(op->obj);
        if (cell.last_writer >= 0 &&
            !th.clock.Knows(cell.last_writer, cell.write_tick)) {
          FailLocked("data race: T" + std::to_string(tid) + " reads cell D" +
                     std::to_string(cell.label) +
                     " concurrently with T" +
                     std::to_string(cell.last_writer) + "'s write");
          return;
        }
        cell.read_ticks[tid] = th.clock.c[tid];
        break;
      }
      case OpKind::kDataWrite: {
        DataCellState& cell = CellOf(op->obj);
        if (cell.last_writer >= 0 &&
            !th.clock.Knows(cell.last_writer, cell.write_tick)) {
          FailLocked("data race: T" + std::to_string(tid) + " writes cell D" +
                     std::to_string(cell.label) +
                     " concurrently with T" +
                     std::to_string(cell.last_writer) + "'s write");
          return;
        }
        for (int u = 0; u < kMaxThreads; ++u) {
          if (u != tid && cell.read_ticks[u] != 0 &&
              !th.clock.Knows(u, cell.read_ticks[u])) {
            FailLocked("data race: T" + std::to_string(tid) +
                       " writes cell D" + std::to_string(cell.label) +
                       " concurrently with T" + std::to_string(u) +
                       "'s read");
            return;
          }
        }
        cell.last_writer = tid;
        cell.write_tick = th.clock.c[tid];
        break;
      }
      case OpKind::kMutexLock: {
        MutexState& mu = MutexOf(op->obj);
        if (mu.holder != -1) {
          FailLocked("internal: mutex lock granted while held");
          return;
        }
        mu.holder = tid;
        th.clock.Join(mu.rel);
        break;
      }
      case OpKind::kMutexUnlock: {
        MutexState& mu = MutexOf(op->obj);
        if (mu.holder != tid) {
          FailLocked("mutex unlock by T" + std::to_string(tid) +
                     " but held by T" + std::to_string(mu.holder));
          return;
        }
        mu.rel.Join(th.clock);
        mu.holder = -1;
        break;
      }
      case OpKind::kCvWaitRelease: {
        MutexState& mu = MutexOf(op->obj2);
        if (mu.holder != tid) {
          FailLocked("cv wait without holding its mutex (T" +
                     std::to_string(tid) + ")");
          return;
        }
        mu.rel.Join(th.clock);
        mu.holder = -1;
        th.waiting_cv = op->obj;
        th.cv_signaled = false;
        th.cv_timed_out = false;
        th.cv_timed = op->timed;
        th.cv_deadline_ns = op->deadline_ns;
        break;
      }
      case OpKind::kCvReacquire: {
        MutexState& mu = MutexOf(op->obj2);
        if (mu.holder != -1) {
          FailLocked("internal: cv reacquire granted while mutex held");
          return;
        }
        mu.holder = tid;
        th.clock.Join(mu.rel);
        op->result_b = th.cv_signaled || !th.cv_timed_out;
        th.waiting_cv = nullptr;
        break;
      }
      case OpKind::kCvNotify: {
        // No happens-before by itself (the mutex hand-off carries it):
        // condition variables only wake, they do not synchronize.
        for (int u = 0; u < nthreads_; ++u) {
          if (th_[u].waiting_cv == op->obj) th_[u].cv_signaled = true;
        }
        break;
      }
      case OpKind::kSpinBlock:
        break;  // the caller re-checks with its own ordering
      case OpKind::kYield:
        break;  // no memory effect; Schedule applies the fairness rule
    }
    // Refresh the trace copy so it carries the op's results (the record
    // is pushed pre-execution so a failing op still appears).
    trace_.back().op = *op;
  }

  int ReadFloor(Location& loc, int tid, std::memory_order mo) {
    const ThreadState& th = th_[tid];
    const int n = static_cast<int>(loc.stores.size());
    int floor = 0;
    for (int i = n - 1; i > 0; --i) {
      const Store& s = loc.stores[i];
      if (th.clock.Knows(s.tid, s.tick)) {
        floor = i;  // newest store that already happened-before us
        break;
      }
    }
    if (mo == std::memory_order_seq_cst && loc.last_sc > floor) {
      // [atomics.order]: a seq_cst load must not observe anything older
      // than the newest seq_cst store to the same location.
      floor = loc.last_sc;
    }
    const Location::PerThread& pt = loc.pt[tid];
    floor = std::max(floor, pt.floor);
    if (pt.reads_at_floor >= kMaxStaleReads && floor == pt.floor &&
        floor < n - 1) {
      ++floor;  // staleness cap: eventually the newer store shows up
    }
    return floor;
  }

  int PickReadable(Location& loc, int tid, std::memory_order mo) {
    const int n = static_cast<int>(loc.stores.size());
    int lo = ReadFloor(loc, tid, mo);
    int choice = Choose(n - lo);
    return (n - 1) - choice;  // newest first
  }

  void ApplyLoad(Location& loc, int tid, int idx, std::memory_order mo) {
    ThreadState& th = th_[tid];
    const Store& s = loc.stores[idx];
    Location::PerThread& pt = loc.pt[tid];
    if (idx == pt.floor) {
      ++pt.reads_at_floor;
    } else if (idx > pt.floor) {
      pt.floor = idx;
      pt.reads_at_floor = 1;
    }
    if (IsAcquire(mo)) {
      th.clock.Join(s.rel);
    } else {
      th.acq_pending.Join(s.rel);
    }
  }

  void DoStore(Location& loc, int tid, uint64_t value, std::memory_order mo,
               const VClock* inherit) {
    ThreadState& th = th_[tid];
    const bool sc = mo == std::memory_order_seq_cst;
    if (sc) {
      // Stronger than the abstract machine, faithful to the hardware
      // mappings: a seq_cst store behaves like store;fence.
      sc_clock_.Join(th.clock);
      th.clock.Join(sc_clock_);
    }
    Store s;
    s.value = value;
    s.tid = tid;
    s.tick = th.clock.c[tid];
    s.rel = IsRelease(mo) ? th.clock : th.rel_fence;
    if (inherit != nullptr) s.rel.Join(*inherit);  // release sequence
    s.sc = sc;
    if (sc) loc.last_sc = static_cast<int>(loc.stores.size());
    loc.stores.push_back(s);
    Location::PerThread& pt = loc.pt[tid];
    pt.floor = static_cast<int>(loc.stores.size()) - 1;
    pt.reads_at_floor = 0;
  }

  // ---- DFS trail -----------------------------------------------------

  int Choose(int num_options) {
    if (num_options <= 1) return 0;
    if (depth_ < trail_.size()) {
      Decision& d = trail_[depth_];
      if (d.num_options != num_options) {
        FailLocked("internal: nondeterministic replay (options " +
                   std::to_string(d.num_options) + " -> " +
                   std::to_string(num_options) + " at depth " +
                   std::to_string(depth_) + ")");
        return 0;
      }
      ++depth_;
      return d.chosen;
    }
    trail_.push_back(Decision{0, num_options});
    ++depth_;
    return 0;
  }

  bool Backtrack() {
    while (!trail_.empty()) {
      Decision& d = trail_.back();
      if (d.chosen + 1 < d.num_options) {
        ++d.chosen;
        return true;
      }
      trail_.pop_back();
    }
    return false;
  }

  // ---- failure plumbing ---------------------------------------------

  void FailLocked(const std::string& msg) {
    if (failure_.empty()) failure_ = msg;
    failing_ = true;
    exec_over_ = true;
  }

  void FailDeadlockLocked() {
    std::string msg = "deadlock: every thread blocked with no deadline —";
    for (int i = 1; i < nthreads_; ++i) {
      if (th_[i].done) continue;
      msg += " T" + std::to_string(i) + ":" + KindName(th_[i].op.kind) + "@" +
             LabelOf(th_[i].op);
    }
    FailLocked(msg);
  }

  void AbortWorkersLocked(std::unique_lock<std::mutex>& l) {
    exec_over_ = true;
    for (int i = 1; i < nthreads_; ++i) th_[i].cv.notify_all();
    sched_cv_.wait(l, [&] {
      for (int i = 1; i < nthreads_; ++i) {
        if (!th_[i].done) return false;
      }
      return true;
    });
  }

  // ---- workers -------------------------------------------------------

  void EnsureWorkersLocked(int n) {
    while (static_cast<int>(workers_.size()) < n) {
      int tid = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, tid] { WorkerMain(tid); });
    }
  }

  void WorkerMain(int tid) {
    t_tid = tid;
    std::unique_lock<std::mutex> l(mu_);
    for (;;) {
      th_[tid].cv.wait(l, [&] { return th_[tid].start || shutdown_; });
      if (shutdown_) return;
      th_[tid].start = false;
      std::function<void()> fn = std::move(th_[tid].fn);
      l.unlock();
      try {
        fn();
      } catch (ExecutionAbort&) {
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        FailLocked("uncaught exception in model thread T" +
                   std::to_string(tid));
      }
      // Drop the lambda (and its captures — whose destructors may call
      // HookForget, which takes mu_) before retaking the engine lock.
      fn = nullptr;
      l.lock();
      th_[tid].done = true;
      th_[tid].has_pending = false;
      sched_cv_.notify_one();
    }
  }

  // ---- registries ----------------------------------------------------

  Location& LocOf(const void* addr, uint64_t init) {
    auto it = locs_.find(addr);
    if (it == locs_.end()) {
      Location loc;
      loc.label = labels_++;
      Store s;
      s.value = init;
      s.tid = 0;
      s.tick = 0;  // tick 0: happened-before every thread's start
      loc.stores.push_back(s);
      it = locs_.emplace(addr, std::move(loc)).first;
    }
    return it->second;
  }
  DataCellState& CellOf(const void* addr) {
    auto it = cells_.find(addr);
    if (it == cells_.end()) {
      DataCellState cell;
      cell.label = labels_++;
      it = cells_.emplace(addr, cell).first;
    }
    return it->second;
  }
  MutexState& MutexOf(const void* addr) {
    auto it = mutexes_.find(addr);
    if (it == mutexes_.end()) {
      MutexState mu;
      mu.label = labels_++;
      it = mutexes_.emplace(addr, mu).first;
    }
    return it->second;
  }

  void Forget(const void* addr) {
    std::lock_guard<std::mutex> l(mu_);
    locs_.erase(addr);
    cells_.erase(addr);
    mutexes_.erase(addr);
  }

  std::string LabelOf(const PendingOp& op) {
    if (op.obj == nullptr) return "-";
    char buf[32];
    auto loc = locs_.find(op.obj);
    if (loc != locs_.end()) {
      std::snprintf(buf, sizeof(buf), "A%d", loc->second.label);
      return buf;
    }
    auto cell = cells_.find(op.obj);
    if (cell != cells_.end()) {
      std::snprintf(buf, sizeof(buf), "D%d", cell->second.label);
      return buf;
    }
    auto mu = mutexes_.find(op.obj);
    if (mu != mutexes_.end()) {
      std::snprintf(buf, sizeof(buf), "M%d", mu->second.label);
      return buf;
    }
    std::snprintf(buf, sizeof(buf), "%p", op.obj);
    return buf;
  }

  // ---- sleep-set independence ---------------------------------------

  static bool Conflicts(const PendingOp& a, const PendingOp& b) {
    auto is_sc_global = [](const PendingOp& op) {
      if (op.mo != std::memory_order_seq_cst) return false;
      return op.kind == OpKind::kStore || op.kind == OpKind::kRmw ||
             op.kind == OpKind::kCas || op.kind == OpKind::kFence;
    };
    if (is_sc_global(a) && is_sc_global(b)) return true;  // SC clock
    auto shares = [](const PendingOp& x, const PendingOp& y) {
      const void* xo[2] = {x.obj, x.obj2};
      const void* yo[2] = {y.obj, y.obj2};
      for (const void* p : xo) {
        if (p == nullptr) continue;
        for (const void* q : yo) {
          if (p == q) return true;
        }
      }
      return false;
    };
    if (!shares(a, b)) return false;
    // Same object: two pure reads commute, everything else conflicts.
    auto pure_read = [](const PendingOp& op) {
      return op.kind == OpKind::kLoad || op.kind == OpKind::kDataRead;
    };
    if (pure_read(a) && pure_read(b) && a.obj == b.obj &&
        a.obj2 == nullptr && b.obj2 == nullptr) {
      return false;
    }
    return true;
  }

  // ---- reporting -----------------------------------------------------

  std::string RenderTrace() const {
    std::ostringstream os;
    os << "interleaving (" << trace_.size() << " ops):\n";
    for (const TraceRec& r : trace_) {
      os << "  T" << r.tid << " " << KindName(r.op.kind);
      if (r.op.obj != nullptr) {
        os << " " << const_cast<Engine*>(this)->LabelOf(r.op);
      }
      switch (r.op.kind) {
        case OpKind::kLoad:
          os << " " << OrderName(r.op.mo) << " -> " << r.op.result;
          break;
        case OpKind::kStore:
          os << " " << OrderName(r.op.mo) << " = " << r.op.arg;
          break;
        case OpKind::kRmw:
          os << " " << OrderName(r.op.mo) << " arg=" << r.op.arg
             << " old=" << r.op.result;
          break;
        case OpKind::kCas:
          os << " " << OrderName(r.op.mo) << " want=" << r.op.arg2
             << " new=" << r.op.arg;
          break;
        case OpKind::kFence:
          os << " " << OrderName(r.op.mo);
          break;
        default:
          break;
      }
      if (r.vtime_ns != 0) os << " @" << r.vtime_ns << "ns";
      os << "\n";
    }
    return os.str();
  }

  std::string RenderReplay() const {
    std::ostringstream os;
    for (size_t i = 0; i < depth_ && i < trail_.size(); ++i) {
      if (i > 0) os << ",";
      os << trail_[i].chosen << "/" << trail_[i].num_options;
    }
    return os.str();
  }

  void ParseReplay(const std::string& replay) {
    trail_.clear();
    if (replay.empty()) return;
    std::istringstream is(replay);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      Decision d{0, 0};
      if (std::sscanf(tok.c_str(), "%d/%d", &d.chosen, &d.num_options) == 2) {
        trail_.push_back(d);
      }
    }
  }

  // ---- state ---------------------------------------------------------

  struct Decision {
    int chosen;
    int num_options;
  };

  const Options opts_;
  std::mutex mu_;
  std::condition_variable sched_cv_;
  std::array<ThreadState, kMaxThreads> th_;
  std::vector<std::thread> workers_;
  int nthreads_ = 1;
  bool shutdown_ = false;

  std::unordered_map<const void*, Location> locs_;
  std::unordered_map<const void*, DataCellState> cells_;
  std::unordered_map<const void*, MutexState> mutexes_;
  int labels_ = 0;
  VClock sc_clock_;
  int64_t vtime_ns_ = 0;
  long steps_ = 0;

  std::vector<Decision> trail_;
  size_t depth_ = 0;
  uint32_t sleep_mask_ = 0;
  uint32_t yield_mask_ = 0;

  bool exec_over_ = false;  // tearing down: hooks pass through
  bool failing_ = false;
  bool pruned_ = false;
  std::string failure_;
  std::vector<TraceRec> trace_;

  friend class ::asterix::mc::Execution;
  friend bool PassthroughNow();
  friend void DispatchFriend(PendingOp* op);
  friend Result(::asterix::mc::Check)(
      const Options&, const std::function<void(Execution&)>&);
  friend void(::asterix::mc::Fail)(const std::string&);
  friend std::chrono::steady_clock::time_point(::asterix::mc::HookSteadyNow)();
};

bool PassthroughNow() {
  Engine* e = g_engine;
  return e == nullptr || t_tid < 0 || e->exec_over_;
}

// Routes an op either through the scheduler (worker threads) or the
// inline single-threaded path (the controlling thread).
void Dispatch(PendingOp* op) {
  if (t_tid == 0) {
    g_engine->ExecuteInline(op);
  } else {
    g_engine->AnnounceAndWait(op);
  }
}

}  // namespace

// ---- public API ------------------------------------------------------

std::string Result::Summary() const {
  std::ostringstream os;
  os << "explored " << executions << " schedule"
     << (executions == 1 ? "" : "s") << " ("
     << (complete ? "complete" : "budget") << "): "
     << (ok ? "ok" : ("FAIL: " + failure));
  return os.str();
}

void Execution::Spawn(std::function<void()> fn) {
  pending_.push_back(std::move(fn));
}

void Execution::Join() { g_engine->RunJoin(&pending_); }

Result Check(const Options& opts,
             const std::function<void(Execution&)>& body) {
  if (g_engine != nullptr) {
    Result res;
    res.ok = false;
    res.failure = "nested mc::Check is not supported";
    return res;
  }
  Engine engine(opts);
  g_engine = &engine;
  t_tid = 0;
  Result res = engine.Run(body);
  g_engine = nullptr;
  t_tid = -1;
  return res;
}

void Fail(const std::string& message) {
  Engine* e = g_engine;
  if (e == nullptr || t_tid < 0) {
    // Outside the checker (e.g. an assert in teardown): nothing to
    // record; treat as a fatal test bug.
    std::fprintf(stderr, "mc::Fail outside Check: %s\n", message.c_str());
    std::abort();
  }
  {
    std::lock_guard<std::mutex> l(e->mu_);
    e->FailLocked(message);
    e->sched_cv_.notify_one();
  }
  throw ExecutionAbort{};
}

bool Active() { return !PassthroughNow(); }

// ---- hooks -----------------------------------------------------------

uint64_t HookLoad(const void* loc, std::memory_order mo, uint64_t plain) {
  if (PassthroughNow()) return plain;
  PendingOp op;
  op.kind = OpKind::kLoad;
  op.obj = loc;
  op.mo = mo;
  op.init = plain;
  Dispatch(&op);
  return op.result;
}

void HookStore(void* loc, uint64_t value, std::memory_order mo,
               uint64_t* plain) {
  if (PassthroughNow()) {
    *plain = value;
    return;
  }
  PendingOp op;
  op.kind = OpKind::kStore;
  op.obj = loc;
  op.mo = mo;
  op.arg = value;
  op.init = *plain;
  op.plain = plain;
  Dispatch(&op);
}

uint64_t HookRmw(void* loc, Rmw rmw, uint64_t operand, std::memory_order mo,
                 uint64_t* plain) {
  if (PassthroughNow()) {
    uint64_t old = *plain;
    switch (rmw) {
      case Rmw::kExchange: *plain = operand; break;
      case Rmw::kAdd: *plain = old + operand; break;
      case Rmw::kSub: *plain = old - operand; break;
    }
    return old;
  }
  PendingOp op;
  op.kind = OpKind::kRmw;
  op.obj = loc;
  op.mo = mo;
  op.rmw = rmw;
  op.arg = operand;
  op.init = *plain;
  op.plain = plain;
  Dispatch(&op);
  return op.result;
}

bool HookCas(void* loc, uint64_t* expected, uint64_t desired, bool weak,
             std::memory_order mo, std::memory_order fail_mo,
             uint64_t* plain) {
  if (PassthroughNow()) {
    if (*plain == *expected) {
      *plain = desired;
      return true;
    }
    *expected = *plain;
    return false;
  }
  PendingOp op;
  op.kind = OpKind::kCas;
  op.obj = loc;
  op.mo = mo;
  op.fail_mo = fail_mo;
  op.arg = desired;
  op.arg2 = *expected;
  op.weak = weak;
  op.init = *plain;
  op.plain = plain;
  Dispatch(&op);
  if (!op.result_b) *expected = op.arg2;
  return op.result_b;
}

void HookFence(std::memory_order mo) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kFence;
  op.mo = mo;
  Dispatch(&op);
}

void HookForget(const void* loc) {
  if (g_engine == nullptr) return;
  g_engine->Forget(loc);
}

void HookDataRead(const void* cell) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kDataRead;
  op.obj = cell;
  Dispatch(&op);
}

void HookDataWrite(void* cell) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kDataWrite;
  op.obj = cell;
  Dispatch(&op);
}

void HookDataForget(const void* cell) { HookForget(cell); }

void HookMutexLock(void* mu) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kMutexLock;
  op.obj = mu;
  Dispatch(&op);
}

void HookMutexUnlock(void* mu) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kMutexUnlock;
  op.obj = mu;
  Dispatch(&op);
}

bool HookCvWait(void* cv, void* mu, bool timed,
                std::chrono::nanoseconds rel_timeout) {
  if (PassthroughNow()) return true;
  if (t_tid == 0) {
    // The controlling thread cannot park (it IS the scheduler): a cv
    // wait here means the body would deadlock against its own workers.
    Fail("cv wait on the controlling thread");
  }
  PendingOp rel;
  rel.kind = OpKind::kCvWaitRelease;
  rel.obj = cv;
  rel.obj2 = mu;
  rel.timed = timed;
  {
    std::lock_guard<std::mutex> l(g_engine->mu_);
    rel.deadline_ns = g_engine->vtime_ns_ + rel_timeout.count();
  }
  Dispatch(&rel);
  PendingOp wake;
  wake.kind = OpKind::kCvReacquire;
  wake.obj = cv;
  wake.obj2 = mu;
  Dispatch(&wake);
  return wake.result_b;
}

void HookCvNotifyAll(void* cv) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kCvNotify;
  op.obj = cv;
  Dispatch(&op);
}

void HookBlockWhileValue(const void* loc, uint64_t observed) {
  if (PassthroughNow()) return;
  PendingOp op;
  op.kind = OpKind::kSpinBlock;
  op.obj = loc;
  op.arg = observed;
  // init: if the location is unregistered the caller just read the
  // observed value from it, so that is also its initial value.
  op.init = observed;
  Dispatch(&op);
}

void HookYield() {
  if (PassthroughNow()) {
    std::this_thread::yield();
    return;
  }
  PendingOp op;
  op.kind = OpKind::kYield;
  Dispatch(&op);
}

std::chrono::steady_clock::time_point HookSteadyNow() {
  if (PassthroughNow()) return std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> l(g_engine->mu_);
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(g_engine->vtime_ns_));
}

}  // namespace mc
}  // namespace asterix
