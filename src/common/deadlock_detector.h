// Debug runtime lock-order checker (absl deadlock-graph style).
//
// Every annotated common::Mutex/SharedMutex acquisition reports its
// LockRank and call site here. The detector keeps
//   * a per-thread stack of currently held locks, and
//   * a global acquired-before graph over ranks, storing the first
//     witness (both acquisition sites) for every observed edge.
//
// An acquisition must carry a rank STRICTLY LOWER than every rank the
// thread already holds. On a violation — including a same-rank
// re-acquisition — the detector prints a witness report naming both
// acquisition sites (and, when the opposite order was ever observed, the
// full acquired-before cycle it closes) and aborts. A lock-order
// inversion is therefore caught on its *first* occurrence, on any path,
// without needing the actual interleaving that deadlocks.
//
// Discipline (same as failpoints, PR 2):
//   * Compiled out entirely unless ASTERIX_DEADLOCK_DETECTOR is defined
//     (the CMake option / `deadlock` preset) — release builds carry no
//     trace of the instrumentation.
//   * When compiled in, the detector arms itself at process start
//     (set ASTERIX_DEADLOCK_DISARM=1 to start disarmed); the disarmed
//     fast path in the Mutex hooks is one relaxed atomic load.
//   * TryLock acquisitions are recorded as held but never abort at their
//     own acquisition (a try-lock cannot block, hence cannot deadlock);
//     they still constrain every later blocking acquisition.
//   * kUnranked mutexes (tests/examples) are invisible to the detector.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/lock_rank.h"

#ifdef ASTERIX_DEADLOCK_DETECTOR
#include <source_location>
#endif

namespace asterix {
namespace common {

#ifdef ASTERIX_DEADLOCK_DETECTOR
inline constexpr bool kDeadlockDetectorCompiledIn = true;

class DeadlockDetector {
 public:
  /// Disarmed fast path: one relaxed load, checked by the Mutex hooks
  /// before anything else.
  // relaxed: armed_ is a standalone on/off flag guarding a debug
  // facility; the graph state it gates lives behind its own mutex, so
  // no ordering rides on the flag and a stale read only means one more
  // (or one fewer) hook invocation around Arm/Disarm.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }
  static void Arm() { armed_.store(true, std::memory_order_relaxed); }
  static void Disarm() { armed_.store(false, std::memory_order_relaxed); }

  /// Blocking acquisition about to happen: enforce strict rank descent
  /// against the thread's held stack, record acquired-before edges, abort
  /// with a witness report on violation.
  static void OnAcquire(LockRank rank, const std::source_location& loc);

  /// Successful try-acquisition: record as held, never aborts.
  static void OnTryAcquire(LockRank rank, const std::source_location& loc);

  static void OnRelease(LockRank rank);

  /// Distinct acquired-before edges observed since start/ResetGraph.
  static size_t EdgeCount();

  /// Clears the global graph (test isolation). Held stacks are untouched.
  static void ResetGraph();

  /// Locks currently held by the calling thread (diagnostics/tests).
  static size_t HeldCount();

 private:
  static std::atomic<bool> armed_;
};

#else  // !ASTERIX_DEADLOCK_DETECTOR

inline constexpr bool kDeadlockDetectorCompiledIn = false;

#endif  // ASTERIX_DEADLOCK_DETECTOR

}  // namespace common
}  // namespace asterix
