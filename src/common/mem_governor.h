// MemGovernor: the central memory broker (ROADMAP item 3's MemMan-style
// manager). Every hot-path memory consumer — pooled frames, subscriber
// rings and their spill files, LSM memtables, merge inputs, the WAL, the
// tracer's span ring — draws from a *named pool* with a fixed byte
// capacity instead of allocating blind. Exhaustion is therefore a typed
// `Status::ResourceExhausted`, surfaced where the ingestion policies can
// act on it (Spill buffers to disk, Throttle sheds, Discard drops), not
// an allocator event.
//
// Concurrency design:
//   * TryReserve/Release are lock-free (a CAS loop on the pool's used
//     counter), so they are safe on any hot path while holding any lock.
//     The CAS (rather than fetch_add + rollback) keeps the observable
//     invariant `used() <= capacity()` true at every instant — the
//     budget property tests assert it concurrently.
//   * ReserveFor parks on a per-pool CondVar under a kMemGovernor-ranked
//     mutex; Release only touches that mutex when a waiter is registered
//     (Dekker-style handshake on `waiters_`, mirroring EventCount). It
//     must be called with no locks held at rank <= kMemGovernor.
//   * ForceReserve never fails: it can push `used` past capacity
//     (overdraft) for paths that must make progress regardless of budget
//     (spill restore, LSM merges). Overdrafts are counted and visible.
//   * Per-pool gauges (used/capacity/high-water) and counters
//     (exhausted/overdraft) are provider-backed in the MetricsRegistry;
//     the provider callbacks read pool atomics only.
//
// The failpoint `common.memgov.reserve` forces TryReserve to report
// exhaustion; its policy instance selects the pool by name, so chaos
// tests can starve one pool (e.g. "frame_path") while others stay open.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_shim.h"
#include "common/mpmc_queue.h"  // SnapshotPtr (lock-free callback swap)
#include "common/observability.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace common {

class MemGovernor;
class MemPool;

/// RAII holder of a pool reservation: releases its bytes back to the pool
/// when destroyed (or on explicit Release). Move-only — a lease can
/// change hands but never be double-released.
class MemLease {
 public:
  MemLease() = default;
  MemLease(MemLease&& other) noexcept
      : pool_(other.pool_), bytes_(other.bytes_) {
    other.pool_ = nullptr;
    other.bytes_ = 0;
  }
  MemLease& operator=(MemLease&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      bytes_ = other.bytes_;
      other.pool_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemLease(const MemLease&) = delete;
  MemLease& operator=(const MemLease&) = delete;
  ~MemLease() ASTERIX_MC_MAY_THROW { Release(); }

  /// Returns the bytes to the pool now (idempotent).
  void Release();

  /// Relinquishes the lease WITHOUT releasing: the caller assumes the
  /// charge and owes the pool a matching Release(bytes). Returns the
  /// byte count transferred (0 if the lease held nothing).
  size_t Disown() {
    size_t bytes = bytes_;
    pool_ = nullptr;
    bytes_ = 0;
    return bytes;
  }

  bool held() const { return pool_ != nullptr; }
  size_t bytes() const { return bytes_; }

 private:
  friend class MemPool;
  MemLease(MemPool* pool, size_t bytes) : pool_(pool), bytes_(bytes) {}
  MemPool* pool_ = nullptr;
  size_t bytes_ = 0;
};

/// One named budget. Created and owned by a MemGovernor; pointers are
/// stable for the governor's lifetime, so consumers resolve their pool
/// once (constructor time) and then reserve/release lock-free.
class MemPool {
 public:
  using ExhaustionCallback =
      std::function<void(const std::string& pool, size_t requested_bytes)>;

  const std::string& name() const { return name_; }

  int64_t capacity() const {
    // relaxed: monitoring read; TryChargeQuiet re-reads under its CAS.
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Runtime resize (tests, elastic reconfiguration). Shrinking below
  /// `used` is allowed: nothing is clawed back, but further TryReserve
  /// calls fail until enough is released.
  void SetCapacity(int64_t capacity_bytes);

  // relaxed: monitoring gauge; the grant path orders via its own CAS.
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t available() const { return capacity() - used(); }
  int64_t high_water() const {
    // relaxed: monitoring gauge, no gating decisions read it.
    return high_water_.load(std::memory_order_relaxed);
  }
  int64_t exhausted_count() const {
    // relaxed: monotonic stats counter for metrics export only.
    return exhausted_.load(std::memory_order_relaxed);
  }
  int64_t overdraft_count() const {
    // relaxed: monotonic stats counter for metrics export only.
    return overdraft_.load(std::memory_order_relaxed);
  }

  /// Lock-free reservation. ResourceExhausted (after invoking the
  /// governor's exhaustion callback) when the pool cannot cover `bytes`;
  /// on OK the caller owes a matching Release(bytes).
  [[nodiscard]] Status TryReserve(size_t bytes);

  /// TryReserve wrapped in an RAII lease (releases on scope exit).
  [[nodiscard]] Status TryLease(size_t bytes, MemLease* lease);

  /// Blocking reservation: parks until space frees up or `timeout_ms`
  /// elapses. Never returns OK past exhaustion — success always means
  /// the bytes fit within capacity at grant time. Must be called with no
  /// lock of rank <= kMemGovernor held.
  [[nodiscard]] Status ReserveFor(size_t bytes, int64_t timeout_ms)
      EXCLUDES(mutex_);

  /// Unconditional reservation for paths that must proceed regardless of
  /// budget (spill restore, merges). May push `used` past capacity; each
  /// overdrawn call is counted in overdraft_count().
  void ForceReserve(size_t bytes);

  /// Returns bytes to the pool and wakes ReserveFor waiters.
  void Release(size_t bytes);

 private:
  friend class MemGovernor;
  explicit MemPool(std::string name, int64_t capacity_bytes);
  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;

  /// CAS-grant within capacity; no failpoint, no callback.
  bool TryChargeQuiet(int64_t bytes);
  void NoteHighWater(int64_t used_now);
  Status Exhausted(size_t requested);

  const std::string name_;
  Atomic<int64_t> capacity_;
  Atomic<int64_t> used_{0};
  Atomic<int64_t> high_water_{0};
  Atomic<int64_t> exhausted_{0};
  Atomic<int64_t> overdraft_{0};
  /// ReserveFor registrations; Release takes mutex_ only when nonzero.
  Atomic<int64_t> waiters_{0};
  Mutex mutex_{LockRank::kMemGovernor};
  CondVar released_;
  /// Swapped in by MemGovernor::SetExhaustionCallback; loaded lock-free
  /// on the (cold) exhaustion path only.
  SnapshotPtr<const ExhaustionCallback> callback_;
};

/// The broker: a registry of named pools plus the standard pool set used
/// by the runtime. Tests construct their own governors (with their own
/// MetricsRegistry) for isolation; production code uses Default().
class MemGovernor {
 public:
  // Standard pool names (the README "Memory governance" table and the
  // MEM-POOL lint rule stay in lockstep with these registrations).
  static constexpr const char* kFramePathPool = "frame_path";
  static constexpr const char* kMemtablePool = "memtable";
  static constexpr const char* kMergePool = "merge";
  static constexpr const char* kSpillPool = "spill";
  static constexpr const char* kSpanRingPool = "span_ring";
  static constexpr const char* kWalPool = "wal";

  /// `registry` may be null (no metrics export; unit tests).
  explicit MemGovernor(MetricsRegistry* registry);
  ~MemGovernor();
  MemGovernor(const MemGovernor&) = delete;
  MemGovernor& operator=(const MemGovernor&) = delete;

  /// Process-wide governor with the standard pools pre-registered
  /// (metrics in MetricsRegistry::Default()).
  static MemGovernor& Default();

  /// Get-or-create. On create the pool starts at `capacity_bytes`; an
  /// existing pool's capacity is left untouched. The returned pointer is
  /// stable for the governor's lifetime.
  MemPool* RegisterPool(const std::string& name, int64_t capacity_bytes)
      EXCLUDES(mutex_);

  /// Lookup only; nullptr when the pool was never registered.
  MemPool* GetPool(const std::string& name) const EXCLUDES(mutex_);

  std::vector<std::string> PoolNames() const EXCLUDES(mutex_);

  /// Policy hook invoked (outside any governor lock) every time a
  /// reservation is refused, with the pool name and the requested bytes.
  /// The callback must be lock-light: it runs on the reserving thread,
  /// which may hold storage/feeds locks.
  void SetExhaustionCallback(MemPool::ExhaustionCallback callback)
      EXCLUDES(mutex_);

 private:
  MetricsRegistry* const registry_;
  mutable Mutex mutex_{LockRank::kMemGovernor};
  // Declared before the provider handles so the handles (which capture
  // raw MemPool*) are destroyed first.
  std::map<std::string, std::unique_ptr<MemPool>> pools_ GUARDED_BY(mutex_);
  std::shared_ptr<const MemPool::ExhaustionCallback> callback_
      GUARDED_BY(mutex_);
  std::vector<MetricsRegistry::ProviderHandle> provider_handles_
      GUARDED_BY(mutex_);
};

}  // namespace common
}  // namespace asterix
