#include "common/status.h"

namespace asterix {
namespace common {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kIOError:
      return "IO_ERROR";
    case Status::Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kAborted:
      return "ABORTED";
    case Status::Code::kUnavailable:
      return "UNAVAILABLE";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kTimedOut:
      return "TIMED_OUT";
    case Status::Code::kNotSupported:
      return "NOT_SUPPORTED";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace common
}  // namespace asterix
