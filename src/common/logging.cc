#include "common/logging.h"
#include "common/thread_annotations.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace asterix {
namespace common {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};
common::Mutex g_mutex{common::LockRank::kLogging};
std::string g_log_file GUARDED_BY(g_mutex);

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

// relaxed: the level is an independent scalar filter — no data is
// published through it, and a momentarily stale threshold only lets one
// extra line through (or drops one) around a SetMinLevel call.
void Logging::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logging::min_level() {
  // relaxed: see SetMinLevel — standalone filter threshold.
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logging::SetLogFile(const std::string& path) {
  common::MutexLock lock(g_mutex);
  g_log_file = path;
}

std::string Logging::log_file() {
  common::MutexLock lock(g_mutex);
  return g_log_file;
}

void Logging::Emit(LogLevel level, const std::string& message) {
  // relaxed: see SetMinLevel — standalone filter threshold.
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  common::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%lld] %-5s %s\n", static_cast<long long>(ms),
               LevelName(level), message.c_str());
  if (!g_log_file.empty()) {
    std::ofstream out(g_log_file, std::ios::app);
    out << "[" << ms << "] " << LevelName(level) << " " << message << "\n";
  }
}

}  // namespace common
}  // namespace asterix
