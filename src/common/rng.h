// Seeded random helpers used by workload generators and the Throttle policy.
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace asterix {
namespace common {

/// Deterministic (per-seed) random source. Not thread-safe; use one per
/// thread or guard externally.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of length n.
  std::string AlphaString(size_t n) {
    std::string s;
    s.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
    return s;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace common
}  // namespace asterix

