// Lock ranking: the global acquisition-order hierarchy for every mutex in
// src/. Deadlock freedom is made a *checked* property of the codebase:
//
//   A thread may only acquire a mutex whose rank is STRICTLY LOWER than
//   the rank of every mutex it already holds.
//
// Outermost locks therefore carry the highest rank values and leaf locks
// (logging, the metrics maps) the lowest. The layering follows the
// dependency direction of the system — feeds call into hyracks call into
// storage call into common — so the bands are
//
//     common (0-99)  <  adm (100-119)  <  gen (120-149)
//       <  storage (200-299)  <  hyracks (300-399)  <  feeds (400-499)
//       <  baseline (500-599)
//
// with explicit intra-layer ranks for the chains that actually nest
// (joint -> subscriber queue -> bucket pool; ack collector -> ack bus /
// pending tracker; metrics provider callbacks -> pipeline objects).
//
// Three enforcement mechanisms consume this enum:
//   * the debug runtime checker (common/deadlock_detector.h, compiled in
//     under ASTERIX_DEADLOCK_DETECTOR) aborts with a witness report on any
//     acquisition that does not strictly descend the hierarchy;
//   * Clang Thread Safety Analysis ACQUIRED_BEFORE/ACQUIRED_AFTER
//     annotations (the `analyze` preset adds -Wthread-safety-beta) check
//     the declared intra-class orderings at compile time;
//   * tools/lint/check_invariants.py (LOCK-RANK / RANK-README) requires
//     every Mutex/SharedMutex construction in src/ to name a rank and
//     keeps the README rank table in lockstep with this enum.
//
// Adding a mutex? Pick the band of its layer, give it a value that
// reflects where it sits in real acquisition chains (inner = lower), add
// it to LockRankName() and to the README "Lock ranking" table.
#pragma once

#include <cstdint>

namespace asterix {
namespace common {

enum class LockRank : uint16_t {
  // ---- common (0-99): leaves, safe to take while holding anything ----
  kQueueParking = 5,       // EventCount parking lot under the lock-free
                           // rings (mpmc_queue.h) — the lowest rank:
                           // nothing is ever acquired under it
  kLogging = 10,           // logging.cc g_mutex (log-file swap)
  kMetricsRegistry = 20,   // MetricsRegistry metric maps (GetCounter/...)
  kFailPointRegistry = 30, // FailPointRegistry armed-site map
  kChaosSchedule = 40,     // ChaosSchedule driver wakeup
  kTracer = 50,            // feeds/trace.h span ring (observability leaf)
  kSimCpu = 60,            // gen/simcpu.h CPU credit gate
  kMemGovernor = 70,       // MemGovernor pool map + per-pool waiter
                           // parking (ReserveFor). A leaf below every
                           // storage/feeds lock: Release's waiter-notify
                           // path runs while callers hold kWal/kLsmIndex/
                           // kSubscriberQueue, so those must rank higher.
  kBlockingQueue = 90,     // default rank for free-standing queues

  // ---- adm (100-119) ----
  kTypeRegistry = 110,     // adm datatype catalog

  // ---- gen (120-149) ----
  kTweetChannel = 130,     // tweetgen Channel queue

  // ---- storage (200-299): inner to outer along the write path ----
  kWal = 210,              // write-ahead log file
  kLsmIndex = 220,         // one LSM partition (memtable/runs)
  kSecondaryIndex = 230,   // B-tree / R-tree secondary
  kDatasetIndexes = 240,   // DatasetPartition secondary-index membership
  kStorageManager = 250,   // node-local partition map
  kDatasetCatalog = 260,   // cluster-wide dataset metadata

  // ---- hyracks (300-399) ----
  // (310 was kTaskQueue, the task input queue's BlockingQueue mutex —
  // retired when the pump moved to the rank-exempt lock-free ring in
  // common/mpmc_queue.h.)
  kCollectSink = 320,      // CollectSinkOperator shared vector
  kNodeController = 330,   // node services + task roster
  kClusterController = 340,// cluster node/job/listener maps

  // ---- feeds (400-499): joint -> subscriber -> ack chains ----
  kBucketPool = 410,       // DataBucketPool free list
  kSubscriberQueue = 420,  // per-subscriber excess-record queue
  kFeedJoint = 430,        // joint subscriber/primary membership
  kIntervalCounter = 440,  // ConnectionMetrics timeline bins
  kAckBus = 450,           // ack handler registry
  kPendingTracker = 455,   // intake unacked-record ledger
  kAckCollector = 460,     // store-side ack batcher
  kConnectionMetrics = 470,// per-connection intake queue registry
  kFeedManager = 480,      // node-local joint/zombie/handoff maps
  kFeedCatalog = 485,      // feed definitions
  kAdaptorRegistry = 486,  // adaptor factories
  kChannelRegistry = 487,  // push-channel endpoints
  kUdfRegistry = 488,      // UDF catalog
  kPolicyRegistry = 489,   // ingestion policy catalog
  kMetricsProviders = 490, // registry provider list; callbacks take
                           // pipeline locks (<= kConnectionMetrics)
  kCentralFeedManager = 495, // outermost: connection/joint/head maps

  // ---- baseline (500-599) ----
  kStormQueue = 510,       // storm tuple queues
  kStormSpoutTracker = 520,// spout pending/replay ledger
  kStormAcker = 530,       // acker XOR trees
  kMongoCollection = 540,  // mongo document map
  kMongoWriteLock = 550,   // mongo 2.x coarse write lock
  kMongoDb = 560,          // collection registry

  // ---- reserved (900+) ----
  kTestRankLow = 910,      // deadlock_test seeded hierarchies
  kTestRankMid = 920,
  kTestRankHigh = 930,
  kUnranked = 999,         // opt-out (tests/examples only; the runtime
                           // checker ignores unranked mutexes and the
                           // LOCK-RANK lint bans them in src/)
};

/// Enum name of `rank` ("kFeedJoint"), for witness reports and tests.
const char* LockRankName(LockRank rank);

}  // namespace common
}  // namespace asterix
