// Atomic shim: the single indirection point between the data plane's
// synchronization primitives and the memory model they execute under.
//
// Normal builds (ASTERIX_MODEL_CHECK undefined): `common::Atomic<T>` IS
// `std::atomic<T>` (a type alias — not a wrapper, so there is nothing to
// inline away), `AtomicFence` is `std::atomic_thread_fence`, `DataCell`
// is a bare value, and `SteadyNow` is `steady_clock::now`. The
// static_asserts below prove the pass-through at compile time; the
// bench_queue CI gate proves it at run time.
//
// Model builds (ASTERIX_MODEL_CHECK defined — only ever by
// tests/model/): every load/store/RMW/fence routes through the
// cooperative scheduler in common/model_check.h, which explores thread
// interleavings exhaustively and simulates weak memory for the declared
// orderings (a relaxed load can observe coherent stale values; a missing
// fence is an explorable state). `DataCell` reports its reads/writes to
// the checker's vector-clock race detector, so plain data "protected" by
// an atomic protocol is verified to actually be protected.
//
// The SPIN-PARK lint allowlists this header: SpinWaitWhile is the one
// place outside mpmc_queue.h allowed to spin, and only as the normal
// build's bounded TTAS inner loop (the model build parks the thread in
// the scheduler instead, so a genuine stuck spin is reported as a
// deadlock with a trace rather than burning the exploration budget).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

#ifdef ASTERIX_MODEL_CHECK
#include "common/model_check.h"
#endif

namespace asterix {
namespace common {

#ifndef ASTERIX_MODEL_CHECK

// ---------------------------------------------------------------------
// Pass-through build: zero-cost aliases over the std primitives.
// ---------------------------------------------------------------------

template <typename T>
using Atomic = std::atomic<T>;

inline void AtomicFence(std::memory_order order) {
  std::atomic_thread_fence(order);
}

/// Non-atomic payload slot whose accesses are ordered by an external
/// protocol (a slot sequence number, a lock bit). In normal builds it is
/// the bare value; in model builds every access feeds the race detector,
/// so the protocol itself is what is being checked.
template <typename T>
class DataCell {
 public:
  DataCell() = default;
  explicit DataCell(T initial) : value_(std::move(initial)) {}
  DataCell(const DataCell&) = delete;
  DataCell& operator=(const DataCell&) = delete;

  template <typename U>
  void Set(U&& next) {
    value_ = std::forward<U>(next);
  }
  /// Moves the value out and resets the cell to T{} (a write).
  T Take() {
    T taken = std::move(value_);
    value_ = T{};
    return taken;
  }
  T Copy() const { return value_; }
  void SwapWith(T& other) {
    using std::swap;
    swap(value_, other);
  }

 private:
  T value_{};
};

inline std::chrono::steady_clock::time_point SteadyNow() {
  return std::chrono::steady_clock::now();
}

/// Bounded TTAS inner wait: spins (yielding every kSpinRounds laps)
/// while `a` reads `v` with relaxed ordering. The caller owns the
/// acquire-side re-check — this is only the polite busy-wait between
/// attempts. The model build suspends the thread until another thread
/// writes the location, so an unreachable store is a reported deadlock
/// instead of a hang.
template <typename T>
inline void SpinWaitWhile(const Atomic<T>& a, T v) {
  constexpr int kSpinRounds = 64;
  int spins = 0;
  while (a.load(std::memory_order_relaxed) == v) {
    if (++spins >= kSpinRounds) {
      spins = 0;
      std::this_thread::yield();  // holder was descheduled (SPIN-PARK)
    }
  }
}

/// Fairness point for spin-retry loops whose exit condition spans
/// several locations (so SpinWaitWhile does not apply): a lap that made
/// no progress cedes the core to the stalled peer it is waiting on. The
/// model build keeps the thread off the schedule until another thread
/// performs a write, so unfair schedules cannot report the loop as a
/// livelock.
inline void SpinYield() { std::this_thread::yield(); }

// The pass-through proof: Atomic must be layout- and type-identical to
// std::atomic (an alias, not a wrapper), and DataCell must add nothing
// to the payload. bench_queue's perf gate rests on these being true.
static_assert(std::is_same_v<Atomic<uint64_t>, std::atomic<uint64_t>>,
              "Atomic<T> must alias std::atomic<T> in normal builds");
static_assert(std::is_same_v<Atomic<bool>, std::atomic<bool>>,
              "Atomic<bool> must alias std::atomic<bool> in normal builds");
static_assert(sizeof(Atomic<uint64_t>) == sizeof(std::atomic<uint64_t>),
              "Atomic<T> must be layout-identical to std::atomic<T>");
static_assert(sizeof(DataCell<char>) == sizeof(char),
              "DataCell<T> must add no storage to T in normal builds");
static_assert(sizeof(DataCell<void*>) == sizeof(void*),
              "DataCell<T> must add no storage to T in normal builds");

#else  // ASTERIX_MODEL_CHECK

// ---------------------------------------------------------------------
// Model build: every operation routes through the checker. Values are
// encoded into uint64_t (integral/bool payloads only — exactly what the
// data plane uses) so the engine can track modification-order histories
// without knowing T.
// ---------------------------------------------------------------------

template <typename T>
class Atomic {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "model-checked Atomic supports integral payloads <= 8B");

 public:
  constexpr Atomic() noexcept : bits_(0) {}
  constexpr Atomic(T v) noexcept  // NOLINT(google-explicit-constructor)
      : bits_(Encode(v)) {}
  ~Atomic() { mc::HookForget(this); }
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    return Decode(mc::HookLoad(this, mo, bits_));
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    mc::HookStore(this, Encode(v), mo, &bits_);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    return Decode(
        mc::HookRmw(this, mc::Rmw::kExchange, Encode(v), mo, &bits_));
  }
  T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst) {
    return Decode(mc::HookRmw(this, mc::Rmw::kAdd, Encode(v), mo, &bits_));
  }
  T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst) {
    return Decode(mc::HookRmw(this, mc::Rmw::kSub, Encode(v), mo, &bits_));
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    return CasImpl(expected, desired, /*weak=*/true, mo, FailOrder(mo));
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order mo,
                             std::memory_order fail_mo) {
    return CasImpl(expected, desired, /*weak=*/true, mo, fail_mo);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    return CasImpl(expected, desired, /*weak=*/false, mo, FailOrder(mo));
  }
  bool compare_exchange_strong(T& expected, T desired, std::memory_order mo,
                               std::memory_order fail_mo) {
    return CasImpl(expected, desired, /*weak=*/false, mo, fail_mo);
  }

 private:
  static constexpr uint64_t Encode(T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return v ? 1 : 0;
    } else {
      using U = std::make_unsigned_t<T>;
      return static_cast<uint64_t>(static_cast<U>(v));
    }
  }
  static constexpr T Decode(uint64_t bits) {
    if constexpr (std::is_same_v<T, bool>) {
      return bits != 0;
    } else {
      using U = std::make_unsigned_t<T>;
      return static_cast<T>(static_cast<U>(bits));
    }
  }
  static constexpr std::memory_order FailOrder(std::memory_order mo) {
    // The single-order compare_exchange derives the failure (load-only)
    // order per [atomics.types.operations]: drop any release component.
    switch (mo) {
      case std::memory_order_acq_rel:
        return std::memory_order_acquire;
      case std::memory_order_release:
        return std::memory_order_relaxed;
      default:
        return mo;
    }
  }
  bool CasImpl(T& expected, T desired, bool weak, std::memory_order mo,
               std::memory_order fail_mo) {
    uint64_t exp = Encode(expected);
    bool ok =
        mc::HookCas(this, &exp, Encode(desired), weak, mo, fail_mo, &bits_);
    if (!ok) expected = Decode(exp);
    return ok;
  }

  // Mirrors the latest value in modification order so pass-through
  // contexts (static init, post-abort unwinding) read coherent state.
  uint64_t bits_;
};

inline void AtomicFence(std::memory_order order) { mc::HookFence(order); }

template <typename T>
class DataCell {
 public:
  DataCell() = default;
  explicit DataCell(T initial) : value_(std::move(initial)) {}
  ~DataCell() { mc::HookDataForget(this); }
  DataCell(const DataCell&) = delete;
  DataCell& operator=(const DataCell&) = delete;

  template <typename U>
  void Set(U&& next) {
    mc::HookDataWrite(this);
    value_ = std::forward<U>(next);
  }
  T Take() {
    mc::HookDataWrite(this);
    T taken = std::move(value_);
    value_ = T{};
    return taken;
  }
  T Copy() const {
    mc::HookDataRead(this);
    return value_;
  }
  void SwapWith(T& other) {
    mc::HookDataWrite(this);
    using std::swap;
    swap(value_, other);
  }

 private:
  T value_{};
};

inline std::chrono::steady_clock::time_point SteadyNow() {
  return mc::HookSteadyNow();
}

template <typename T>
inline void SpinWaitWhile(const Atomic<T>& a, T v) {
  // Park in the scheduler until some thread stores a different value to
  // `a`; the caller's retry loop re-checks with its own ordering. (The
  // encoding mirrors Atomic<T>::Encode for integral payloads.)
  uint64_t observed;
  if constexpr (std::is_same_v<T, bool>) {
    observed = v ? 1 : 0;
  } else {
    observed = static_cast<uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  }
  mc::HookBlockWhileValue(&a, observed);
}

inline void SpinYield() { mc::HookYield(); }

#endif  // ASTERIX_MODEL_CHECK

}  // namespace common
}  // namespace asterix
