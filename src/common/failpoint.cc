#include "common/failpoint.h"

#include <algorithm>

#include "common/clock.h"

namespace asterix {
namespace common {

std::atomic<int64_t> FailPointRegistry::armed_count_{0};

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

void FailPointRegistry::Arm(const std::string& site,
                            FailPointPolicy policy) {
  MutexLock lock(mutex_);
  auto it = points_.find(site);
  if (it == points_.end()) {
    // relaxed: armed_count_ is only an AnyArmed fast-path hint; the
    // authoritative point state is read under mutex_ by Evaluate, so a
    // racing reader merely takes (or skips) one map-lookup slow path.
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    it = points_.emplace(site, ArmedPoint{}).first;
  } else {
    // Re-arm resets counters so policies compose over a timeline.
    it->second = ArmedPoint{};
  }
  it->second.rng = Rng(policy.seed);
  it->second.policy = std::move(policy);
}

void FailPointRegistry::Disarm(const std::string& site) {
  MutexLock lock(mutex_);
  if (points_.erase(site) > 0) {
    // relaxed: see Arm — hint counter, truth is under mutex_.
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::DisarmAll() {
  MutexLock lock(mutex_);
  // relaxed: see Arm — hint counter, truth is under mutex_.
  armed_count_.fetch_sub(static_cast<int64_t>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

Status FailPointRegistry::Evaluate(const std::string& site,
                                   const std::string& instance) {
  // Decide under the lock; act (sleep, callback) outside it so a slow
  // action never serialises unrelated sites.
  FailPointPolicy::Action action;
  Status error;
  int64_t delay_ms = 0;
  std::function<void()> callback;
  {
    MutexLock lock(mutex_);
    auto it = points_.find(site);
    if (it == points_.end()) return Status::OK();
    ArmedPoint& point = it->second;
    const FailPointPolicy& policy = point.policy;
    if (!policy.instance.empty() && policy.instance != instance) {
      return Status::OK();
    }
    int64_t pass = ++point.hits;
    if (pass <= policy.skip_first) return Status::OK();
    pass -= policy.skip_first;
    if (policy.max_fires >= 0 && point.fires >= policy.max_fires) {
      return Status::OK();
    }
    bool fire = false;
    switch (policy.trigger) {
      case FailPointPolicy::Trigger::kAlways:
        fire = true;
        break;
      case FailPointPolicy::Trigger::kOnce:
        fire = point.fires == 0;
        break;
      case FailPointPolicy::Trigger::kEveryNth:
        fire = policy.every_nth > 0 && pass % policy.every_nth == 0;
        break;
      case FailPointPolicy::Trigger::kProbability:
        fire = point.rng.Chance(policy.probability);
        break;
    }
    if (!fire) return Status::OK();
    ++point.fires;
    action = policy.action;
    error = policy.error;
    delay_ms = policy.delay_ms;
    callback = policy.callback;
  }
  switch (action) {
    case FailPointPolicy::Action::kError:
    case FailPointPolicy::Action::kThrow:
      return error;
    case FailPointPolicy::Action::kDelay:
      if (delay_ms > 0) SleepMillis(delay_ms);
      return Status::OK();
    case FailPointPolicy::Action::kCallback:
      if (callback) callback();
      return Status::OK();
  }
  return Status::OK();
}

int64_t FailPointRegistry::Hits(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = points_.find(site);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FailPointRegistry::Fires(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = points_.find(site);
  return it == points_.end() ? 0 : it->second.fires;
}

ChaosSchedule::ChaosSchedule(uint64_t seed) : seed_(seed), seeder_(seed) {}

ChaosSchedule::~ChaosSchedule() { Stop(); }

ChaosSchedule& ChaosSchedule::ArmAt(int64_t at_ms, std::string site,
                                    FailPointPolicy policy) {
  if (policy.trigger == FailPointPolicy::Trigger::kProbability &&
      policy.seed == 42) {
    // Derive a distinct, reproducible stream per step from the schedule
    // seed — the test only has to remember one number.
    policy.seed = static_cast<uint64_t>(seeder_.engine()());
  }
  steps_.push_back(Step{at_ms, std::move(site), std::move(policy)});
  return *this;
}

ChaosSchedule& ChaosSchedule::DisarmAt(int64_t at_ms, std::string site) {
  steps_.push_back(Step{at_ms, std::move(site), std::nullopt});
  return *this;
}

void ChaosSchedule::Start() {
  if (started_) return;
  started_ = true;
  std::stable_sort(steps_.begin(), steps_.end(),
                   [](const Step& a, const Step& b) {
                     return a.at_ms < b.at_ms;
                   });
  driver_ = std::thread([this] { DriverMain(); });
}

void ChaosSchedule::Stop() {
  bool already_stopped;
  {
    MutexLock lock(mutex_);
    already_stopped = stop_;
    stop_ = true;
  }
  // Join outside the lock: DriverMain re-acquires mutex_ at the top of
  // every step, so joining while holding it deadlocks a concurrent or
  // repeated Stop() against a driver still between steps.
  cv_.NotifyAll();
  if (driver_.joinable()) driver_.join();
  if (already_stopped) return;
  for (const Step& step : steps_) {
    FailPointRegistry::Instance().Disarm(step.site);
  }
}

void ChaosSchedule::DriverMain() {
  const int64_t start_ms = NowMillis();
  for (const Step& step : steps_) {
    {
      MutexLock lock(mutex_);
      int64_t due_ms = start_ms + step.at_ms;
      cv_.WaitFor(mutex_,
                  std::chrono::milliseconds(
                      std::max<int64_t>(0, due_ms - NowMillis())),
                  [this]() REQUIRES(mutex_) { return stop_; });
      if (stop_) return;
    }
    if (step.policy.has_value()) {
      FailPointRegistry::Instance().Arm(step.site, *step.policy);
    } else {
      FailPointRegistry::Instance().Disarm(step.site);
    }
  }
}

}  // namespace common
}  // namespace asterix
