#include "common/deadlock_detector.h"

#include <cstdio>
#include <cstdlib>

namespace asterix {
namespace common {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kQueueParking: return "kQueueParking";
    case LockRank::kLogging: return "kLogging";
    case LockRank::kMetricsRegistry: return "kMetricsRegistry";
    case LockRank::kFailPointRegistry: return "kFailPointRegistry";
    case LockRank::kChaosSchedule: return "kChaosSchedule";
    case LockRank::kTracer: return "kTracer";
    case LockRank::kSimCpu: return "kSimCpu";
    case LockRank::kMemGovernor: return "kMemGovernor";
    case LockRank::kBlockingQueue: return "kBlockingQueue";
    case LockRank::kTypeRegistry: return "kTypeRegistry";
    case LockRank::kTweetChannel: return "kTweetChannel";
    case LockRank::kWal: return "kWal";
    case LockRank::kLsmIndex: return "kLsmIndex";
    case LockRank::kSecondaryIndex: return "kSecondaryIndex";
    case LockRank::kDatasetIndexes: return "kDatasetIndexes";
    case LockRank::kStorageManager: return "kStorageManager";
    case LockRank::kDatasetCatalog: return "kDatasetCatalog";
    case LockRank::kCollectSink: return "kCollectSink";
    case LockRank::kNodeController: return "kNodeController";
    case LockRank::kClusterController: return "kClusterController";
    case LockRank::kBucketPool: return "kBucketPool";
    case LockRank::kSubscriberQueue: return "kSubscriberQueue";
    case LockRank::kFeedJoint: return "kFeedJoint";
    case LockRank::kIntervalCounter: return "kIntervalCounter";
    case LockRank::kAckBus: return "kAckBus";
    case LockRank::kPendingTracker: return "kPendingTracker";
    case LockRank::kAckCollector: return "kAckCollector";
    case LockRank::kConnectionMetrics: return "kConnectionMetrics";
    case LockRank::kFeedManager: return "kFeedManager";
    case LockRank::kFeedCatalog: return "kFeedCatalog";
    case LockRank::kAdaptorRegistry: return "kAdaptorRegistry";
    case LockRank::kChannelRegistry: return "kChannelRegistry";
    case LockRank::kUdfRegistry: return "kUdfRegistry";
    case LockRank::kPolicyRegistry: return "kPolicyRegistry";
    case LockRank::kMetricsProviders: return "kMetricsProviders";
    case LockRank::kCentralFeedManager: return "kCentralFeedManager";
    case LockRank::kStormQueue: return "kStormQueue";
    case LockRank::kStormSpoutTracker: return "kStormSpoutTracker";
    case LockRank::kStormAcker: return "kStormAcker";
    case LockRank::kMongoCollection: return "kMongoCollection";
    case LockRank::kMongoWriteLock: return "kMongoWriteLock";
    case LockRank::kMongoDb: return "kMongoDb";
    case LockRank::kTestRankLow: return "kTestRankLow";
    case LockRank::kTestRankMid: return "kTestRankMid";
    case LockRank::kTestRankHigh: return "kTestRankHigh";
    case LockRank::kUnranked: return "kUnranked";
  }
  return "<unknown rank>";
}

}  // namespace common
}  // namespace asterix

#ifdef ASTERIX_DEADLOCK_DETECTOR

#include <map>
#include <mutex>  // the detector's own lock must bypass instrumentation
#include <set>
#include <utility>
#include <vector>

namespace asterix {
namespace common {
namespace {

struct Held {
  LockRank rank;
  const char* file;
  uint32_t line;
};

// Per-thread held-lock stack. Deliberately leaked (one small allocation
// per thread, debug builds only) so hooks that run during thread / static
// teardown — e.g. logging from a destructor — never touch a destroyed
// thread_local.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held>* stack = new std::vector<Held>();
  return *stack;
}

// First witness of one acquired-before edge: `from` was held at
// (from_file:from_line) when `to` was acquired at (to_file:to_line).
struct EdgeWitness {
  const char* from_file;
  uint32_t from_line;
  const char* to_file;
  uint32_t to_line;
};

// The global acquired-before graph. A raw std::mutex on purpose: the
// detector cannot instrument itself (the lint RAW-MUTEX allowlist admits
// this file).
std::mutex g_graph_mu;
std::map<std::pair<uint16_t, uint16_t>, EdgeWitness> g_edges;
std::map<uint16_t, std::set<uint16_t>> g_adj;

uint16_t Id(LockRank rank) { return static_cast<uint16_t>(rank); }

// DFS: is `to` reachable from `from` along recorded edges? Fills `path`
// with the ranks visited from `from` to `to` inclusive. Caller holds
// g_graph_mu.
bool FindPath(uint16_t from, uint16_t to, std::set<uint16_t>* seen,
              std::vector<uint16_t>* path) {
  path->push_back(from);
  if (from == to) return true;
  seen->insert(from);
  auto it = g_adj.find(from);
  if (it != g_adj.end()) {
    for (uint16_t next : it->second) {
      if (seen->count(next)) continue;
      if (FindPath(next, to, seen, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

[[noreturn]] void AbortWithReport(LockRank acquiring,
                                  const std::source_location& loc,
                                  const Held& conflicting, bool same_rank) {
  std::fprintf(stderr,
               "==== deadlock detector: lock-order violation ====\n");
  if (same_rank) {
    std::fprintf(stderr,
                 "same-rank re-acquisition: %s (rank %u)\n"
                 "  already held, acquired at %s:%u\n"
                 "  re-acquired at           %s:%u\n"
                 "holding two locks of one rank is banned: instances of a "
                 "rank are\nunordered, so nesting them can deadlock "
                 "against the opposite nesting.\n",
                 LockRankName(acquiring), Id(acquiring), conflicting.file,
                 conflicting.line, loc.file_name(),
                 static_cast<uint32_t>(loc.line()));
  } else {
    std::fprintf(stderr,
                 "acquiring %s (rank %u) at %s:%u\n"
                 "while holding %s (rank %u) acquired at %s:%u\n"
                 "lock ranks must strictly decrease along every "
                 "acquisition chain\n(see src/common/lock_rank.h and the "
                 "README rank table).\n",
                 LockRankName(acquiring), Id(acquiring), loc.file_name(),
                 static_cast<uint32_t>(loc.line()),
                 LockRankName(conflicting.rank), Id(conflicting.rank),
                 conflicting.file, conflicting.line);
    // If the opposite order was ever recorded, this acquisition closes a
    // cycle in the acquired-before graph: print the witness chain.
    std::lock_guard<std::mutex> g(g_graph_mu);
    std::set<uint16_t> seen;
    std::vector<uint16_t> path;
    if (FindPath(Id(acquiring), Id(conflicting.rank), &seen, &path) &&
        path.size() >= 2) {
      std::fprintf(stderr,
                   "witness cycle (prior acquired-before edges):\n");
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        const EdgeWitness& w = g_edges.at({path[i], path[i + 1]});
        std::fprintf(
            stderr,
            "  %s -> %s: %s held at %s:%u when %s acquired at %s:%u\n",
            LockRankName(static_cast<LockRank>(path[i])),
            LockRankName(static_cast<LockRank>(path[i + 1])),
            LockRankName(static_cast<LockRank>(path[i])), w.from_file,
            w.from_line, LockRankName(static_cast<LockRank>(path[i + 1])),
            w.to_file, w.to_line);
      }
      std::fprintf(stderr,
                   "  %s -> %s: closes the cycle (this acquisition)\n",
                   LockRankName(conflicting.rank), LockRankName(acquiring));
    } else {
      std::fprintf(stderr,
                   "no prior opposite-order edge recorded: this is a rank "
                   "hierarchy\nviolation caught before any cycle "
                   "materialized.\n");
    }
  }
  std::fprintf(stderr, "aborting\n");
  std::abort();
}

void RecordEdges(const std::vector<Held>& held, LockRank rank,
                 const std::source_location& loc) {
  std::lock_guard<std::mutex> g(g_graph_mu);
  for (const Held& h : held) {
    auto key = std::make_pair(Id(h.rank), Id(rank));
    if (g_edges.emplace(key, EdgeWitness{h.file, h.line, loc.file_name(),
                                         static_cast<uint32_t>(loc.line())})
            .second) {
      g_adj[key.first].insert(key.second);
    }
  }
}

// Arm at process start so every suite in the `deadlock` preset runs under
// the checker without per-test plumbing.
struct AutoArm {
  AutoArm() {
    if (std::getenv("ASTERIX_DEADLOCK_DISARM") == nullptr) {
      DeadlockDetector::Arm();
    }
  }
} g_auto_arm;

}  // namespace

std::atomic<bool> DeadlockDetector::armed_{false};

void DeadlockDetector::OnAcquire(LockRank rank,
                                 const std::source_location& loc) {
  if (rank == LockRank::kUnranked) return;
  std::vector<Held>& held = HeldStack();
  for (const Held& h : held) {
    if (h.rank == rank) AbortWithReport(rank, loc, h, /*same_rank=*/true);
    if (h.rank < rank) AbortWithReport(rank, loc, h, /*same_rank=*/false);
  }
  if (!held.empty()) RecordEdges(held, rank, loc);
  held.push_back(
      Held{rank, loc.file_name(), static_cast<uint32_t>(loc.line())});
}

void DeadlockDetector::OnTryAcquire(LockRank rank,
                                    const std::source_location& loc) {
  if (rank == LockRank::kUnranked) return;
  std::vector<Held>& held = HeldStack();
  // A successful try-lock cannot have blocked, so it is exempt from the
  // descent rule — but it is genuinely held now, so it constrains every
  // later blocking acquisition, and its edges are still recorded.
  if (!held.empty()) RecordEdges(held, rank, loc);
  held.push_back(
      Held{rank, loc.file_name(), static_cast<uint32_t>(loc.line())});
}

void DeadlockDetector::OnRelease(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->rank == rank) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Acquired before the detector was armed: nothing to pop.
}

size_t DeadlockDetector::EdgeCount() {
  std::lock_guard<std::mutex> g(g_graph_mu);
  return g_edges.size();
}

void DeadlockDetector::ResetGraph() {
  std::lock_guard<std::mutex> g(g_graph_mu);
  g_edges.clear();
  g_adj.clear();
}

size_t DeadlockDetector::HeldCount() { return HeldStack().size(); }

}  // namespace common
}  // namespace asterix

#endif  // ASTERIX_DEADLOCK_DETECTOR
