#include "common/observability.h"
#include "common/thread_annotations.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace asterix {
namespace common {

namespace {

// Escapes a label value per the Prometheus text exposition rules.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Bucket index for a recorded value: bucket 0 holds values <= 1, bucket i
// holds (2^(i-1), 2^i]. Negative values (monotonic-clock anomalies) clamp
// to bucket 0 rather than producing a bogus huge index.
int BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  int idx = std::bit_width(static_cast<uint64_t>(value - 1));
  return std::min(idx, Histogram::kBuckets - 1);
}

// Inserts extra labels (e.g. le="...") into a canonical key that may or
// may not already carry a label block.
std::string KeyWithExtraLabel(const std::string& name, const std::string& key,
                              const std::string& suffix,
                              const std::string& extra) {
  std::string labels = key.substr(name.size());  // "" or "{...}"
  if (labels.empty()) return name + suffix + "{" + extra + "}";
  labels.pop_back();  // drop '}'
  return name + suffix + labels + "," + extra + "}";
}

}  // namespace

void Histogram::Record(int64_t value) {
  // relaxed: metrics cells carry no payload — each field is an
  // independent statistic and scrapes tolerate a torn view (count may
  // momentarily disagree with sum); no reader orders program state by
  // them.
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         // relaxed: monotone-max CAS on a stats cell; see above.
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(std::ceil(q * double(count)));
  if (target < 1) target = 1;
  int64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      // The bucket upper bound over-estimates for the last bucket a value
      // landed in; clamping by the tracked max keeps quantiles monotone
      // and <= Max().
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

std::string MetricsSnapshot::Key(const std::string& name,
                                 const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=\"" + EscapeLabelValue(sorted[i].second) + "\"";
  }
  key += "}";
  return key;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      const MetricLabels& labels) const {
  auto it = counters.find(Key(name, labels));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name,
                                    const MetricLabels& labels) const {
  auto it = gauges.find(Key(name, labels));
  return it == gauges.end() ? 0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::Histogram(
    const std::string& name, const MetricLabels& labels) const {
  auto it = histograms.find(Key(name, labels));
  return it == histograms.end() ? nullptr : &it->second;
}

MetricsRegistry::ProviderHandle::ProviderHandle(ProviderHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

MetricsRegistry::ProviderHandle& MetricsRegistry::ProviderHandle::operator=(
    ProviderHandle&& other) noexcept {
  if (this != &other) {
    Reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::ProviderHandle::Reset() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  std::string key = MetricsSnapshot::Key(name, labels);
  common::MutexLock lock(mutex_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    names_[key] = name;
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  std::string key = MetricsSnapshot::Key(name, labels);
  common::MutexLock lock(mutex_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    names_[key] = name;
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  std::string key = MetricsSnapshot::Key(name, labels);
  common::MutexLock lock(mutex_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    names_[key] = name;
  }
  return slot.get();
}

MetricsRegistry::ProviderHandle MetricsRegistry::RegisterProvider(
    const std::string& name, ProviderKind kind, const MetricLabels& labels,
    std::function<int64_t()> fn) {
  std::string key = MetricsSnapshot::Key(name, labels);
  common::MutexLock lock(providers_mutex_);
  int64_t id = next_provider_id_++;
  providers_.push_back(Provider{id, kind, key, name, std::move(fn)});
  return ProviderHandle(this, id);
}

void MetricsRegistry::Unregister(int64_t id) {
  common::MutexLock lock(providers_mutex_);
  providers_.erase(std::remove_if(providers_.begin(), providers_.end(),
                                  [id](const Provider& p) {
                                    return p.id == id;
                                  }),
                   providers_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  // providers_mutex_ (outer) stays held while the callbacks run — that is
  // the ProviderHandle::Reset guarantee. mutex_ (leaf) is only held for
  // the owned-map copy: the callbacks take pipeline locks that outrank it.
  common::MutexLock providers_lock(providers_mutex_);
  {
    common::MutexLock lock(mutex_);
    for (const auto& [key, counter] : counters_) {
      snap.counters[key] = counter->Value();
    }
    for (const auto& [key, gauge] : gauges_) {
      snap.gauges[key] = gauge->Value();
    }
    for (const auto& [key, hist] : histograms_) {
      HistogramSnapshot h;
      // relaxed: scrape of independent statistic cells; a torn
      // cross-field view is acceptable for monitoring (see Record).
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        h.buckets[i] = hist->buckets_[i].load(std::memory_order_relaxed);
      }
      h.count = hist->count_.load(std::memory_order_relaxed);
      h.sum = hist->sum_.load(std::memory_order_relaxed);
      h.max = hist->max_.load(std::memory_order_relaxed);
      snap.histograms[key] = h;
    }
  }
  for (const auto& provider : providers_) {
    int64_t v = provider.fn();
    if (provider.kind == ProviderKind::kCounter) {
      snap.counters[provider.key] = v;
    } else {
      snap.gauges[provider.key] = v;
    }
  }
  return snap;
}

std::string MetricsRegistry::Export() const {
  MetricsSnapshot snap;
  // name -> (kind, sample keys); names_ covers owned metrics, providers
  // carry their own name.
  std::map<std::string, std::pair<std::string, std::vector<std::string>>>
      by_name;
  {
    // Same nesting as Snapshot(): providers_mutex_ outer, mutex_ inner
    // and released before the callbacks run.
    common::MutexLock providers_lock(providers_mutex_);
    {
      common::MutexLock lock(mutex_);
      for (const auto& [key, counter] : counters_) {
        snap.counters[key] = counter->Value();
        auto& entry = by_name[names_.at(key)];
        entry.first = "counter";
        entry.second.push_back(key);
      }
      for (const auto& [key, gauge] : gauges_) {
        snap.gauges[key] = gauge->Value();
        auto& entry = by_name[names_.at(key)];
        entry.first = "gauge";
        entry.second.push_back(key);
      }
      for (const auto& [key, hist] : histograms_) {
        HistogramSnapshot h;
        // relaxed: scrape of independent statistic cells (see Record).
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          h.buckets[i] = hist->buckets_[i].load(std::memory_order_relaxed);
        }
        h.count = hist->count_.load(std::memory_order_relaxed);
        h.sum = hist->sum_.load(std::memory_order_relaxed);
        h.max = hist->max_.load(std::memory_order_relaxed);
        snap.histograms[key] = h;
        auto& entry = by_name[names_.at(key)];
        entry.first = "histogram";
        entry.second.push_back(key);
      }
    }
    for (const auto& provider : providers_) {
      int64_t v = provider.fn();
      const char* kind =
          provider.kind == ProviderKind::kCounter ? "counter" : "gauge";
      if (provider.kind == ProviderKind::kCounter) {
        snap.counters[provider.key] = v;
      } else {
        snap.gauges[provider.key] = v;
      }
      auto& entry = by_name[provider.name];
      entry.first = kind;
      entry.second.push_back(provider.key);
    }
  }

  std::ostringstream out;
  for (auto& [name, entry] : by_name) {
    auto& [kind, keys] = entry;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    out << "# TYPE " << name << " " << kind << "\n";
    for (const std::string& key : keys) {
      if (kind == "histogram") {
        const HistogramSnapshot& h = snap.histograms.at(key);
        int highest = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (h.buckets[i] > 0) highest = i;
        }
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += h.buckets[i];
          out << KeyWithExtraLabel(
                     name, key, "_bucket",
                     "le=\"" +
                         std::to_string(Histogram::BucketUpperBound(i)) +
                         "\"")
              << " " << cumulative << "\n";
        }
        out << KeyWithExtraLabel(name, key, "_bucket", "le=\"+Inf\"") << " "
            << h.count << "\n";
        std::string labels = key.substr(name.size());
        out << name << "_sum" << labels << " " << h.sum << "\n";
        out << name << "_count" << labels << " " << h.count << "\n";
      } else {
        int64_t v = kind == "counter" ? snap.counters.at(key)
                                      : snap.gauges.at(key);
        out << key << " " << v << "\n";
      }
    }
  }
  return out.str();
}

std::vector<MetricInfo> MetricsRegistry::List() const {
  std::vector<MetricInfo> out;
  common::MutexLock providers_lock(providers_mutex_);
  {
    common::MutexLock lock(mutex_);
    for (const auto& kv : counters_) {
      const std::string& name = names_.at(kv.first);
      out.push_back(MetricInfo{"counter", name, kv.first.substr(name.size())});
    }
    for (const auto& kv : gauges_) {
      const std::string& name = names_.at(kv.first);
      out.push_back(MetricInfo{"gauge", name, kv.first.substr(name.size())});
    }
    for (const auto& kv : histograms_) {
      const std::string& name = names_.at(kv.first);
      out.push_back(
          MetricInfo{"histogram", name, kv.first.substr(name.size())});
    }
  }
  for (const auto& provider : providers_) {
    out.push_back(MetricInfo{
        provider.kind == ProviderKind::kCounter ? "counter" : "gauge",
        provider.name, provider.key.substr(provider.name.size())});
  }
  return out;
}

}  // namespace common
}  // namespace asterix
