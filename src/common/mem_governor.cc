#include "common/mem_governor.h"

#include <chrono>
#include <utility>

#include "common/failpoint.h"

namespace asterix {
namespace common {

namespace {

// Default capacities for the standard pools. Generous by design: the
// budgets exist to make memory pressure observable and *steerable*
// (tests and elastic policies shrink them), not to trip during normal
// operation on a developer machine.
constexpr int64_t kDefaultFramePathBytes = 256LL << 20;
constexpr int64_t kDefaultMemtableBytes = 512LL << 20;
constexpr int64_t kDefaultMergeBytes = 512LL << 20;
constexpr int64_t kDefaultSpillBytes = 1LL << 30;
constexpr int64_t kDefaultSpanRingBytes = 64LL << 20;
constexpr int64_t kDefaultWalBytes = 64LL << 20;

}  // namespace

void MemLease::Release() {
  if (pool_ != nullptr) {
    pool_->Release(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

MemPool::MemPool(std::string name, int64_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {}

void MemPool::SetCapacity(int64_t capacity_bytes) {
  // relaxed: the store needs no ordering of its own — a waiter either
  // re-reads it inside TryChargeQuiet's CAS loop after the notify below,
  // or the next TryReserve picks it up; nothing is published with it.
  capacity_.store(capacity_bytes, std::memory_order_relaxed);
  // A grow may unblock parked ReserveFor waiters.
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    MutexLock lock(mutex_);
    released_.NotifyAll();
  }
}

void MemPool::NoteHighWater(int64_t used_now) {
  // relaxed: monotonic max of a stats gauge; only monitoring reads it.
  int64_t seen = high_water_.load(std::memory_order_relaxed);
  while (used_now > seen &&
         !high_water_.compare_exchange_weak(seen, used_now,
                                            std::memory_order_relaxed)) {
  }
}

bool MemPool::TryChargeQuiet(int64_t bytes) {
  // CAS-grant (not fetch_add + rollback): `used_` never overshoots
  // capacity, so `used() <= capacity()` is an always-true observable
  // invariant (absent ForceReserve overdrafts) that the budget property
  // tests assert concurrently.
  // relaxed: a stale read only mispredicts the CAS `expected`; the
  // seq_cst CAS below is the linearization point.
  int64_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    // relaxed: capacity is re-read each lap; a stale value flips one
    // admission decision at worst, never the used_ <= capacity_
    // invariant (the CAS grants against the value read here, and
    // capacity shrink explicitly tolerates in-flight grants).
    if (cur + bytes > capacity_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_seq_cst)) {
      NoteHighWater(cur + bytes);
      return true;
    }
  }
}

Status MemPool::Exhausted(size_t requested) {
  // relaxed: monotonic stats counter for metrics export only.
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  // The policy hook runs on the reserving thread, outside any governor
  // lock (the snapshot load is lock-free).
  std::shared_ptr<const ExhaustionCallback> cb = callback_.load();
  if (cb != nullptr && *cb) {
    (*cb)(name_, requested);
  }
  return Status::ResourceExhausted(
      "mem pool '" + name_ + "' exhausted: requested " +
      std::to_string(requested) + " bytes, " +
      std::to_string(available()) + " of " + std::to_string(capacity()) +
      " available");
}

Status MemPool::TryReserve(size_t bytes) {
  // Forced exhaustion for chaos tests; the policy instance targets one
  // pool by name, so e.g. "frame_path" can be starved in isolation.
  if (ASTERIX_FAILPOINT_TRIGGERED("common.memgov.reserve", name_)) {
    return Exhausted(bytes);
  }
  if (bytes == 0) return Status::OK();
  if (!TryChargeQuiet(static_cast<int64_t>(bytes))) {
    return Exhausted(bytes);
  }
  return Status::OK();
}

Status MemPool::TryLease(size_t bytes, MemLease* lease) {
  Status reserved = TryReserve(bytes);
  if (!reserved.ok()) return reserved;
  *lease = MemLease(this, bytes);
  return Status::OK();
}

Status MemPool::ReserveFor(size_t bytes, int64_t timeout_ms) {
  Status first = TryReserve(bytes);
  if (first.ok()) return first;
  const auto deadline =
      SteadyNow() + std::chrono::milliseconds(timeout_ms);
  MutexLock lock(mutex_);
  for (;;) {
    // Registration before the re-check (Dekker handshake with Release):
    // either Release's seq_cst used_ decrement happens before our
    // re-check — we see the space — or our seq_cst waiter registration
    // happens before its waiter load — it takes the mutex and notifies.
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (TryChargeQuiet(static_cast<int64_t>(bytes))) {
      waiters_.fetch_sub(1, std::memory_order_seq_cst);
      return Status::OK();
    }
    auto now = SteadyNow();
    if (now >= deadline) {
      waiters_.fetch_sub(1, std::memory_order_seq_cst);
      return Exhausted(bytes);
    }
    released_.WaitFor(mutex_, deadline - now);
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void MemPool::ForceReserve(size_t bytes) {
  if (bytes == 0) return;
  int64_t b = static_cast<int64_t>(bytes);
  int64_t now_used = used_.fetch_add(b, std::memory_order_seq_cst) + b;
  NoteHighWater(now_used);
  // relaxed: both the capacity read (stats-only comparison) and the
  // overdraft counter feed monitoring; admission never reads them.
  if (now_used > capacity_.load(std::memory_order_relaxed)) {
    overdraft_.fetch_add(1, std::memory_order_relaxed);
  }
}

void MemPool::Release(size_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    // Taken only on the contended path; rank kMemGovernor sits below
    // every storage/feeds lock a releasing caller may hold.
    MutexLock lock(mutex_);
    released_.NotifyAll();
  }
}

MemGovernor::MemGovernor(MetricsRegistry* registry) : registry_(registry) {}

MemGovernor::~MemGovernor() = default;

MemGovernor& MemGovernor::Default() {
  static MemGovernor* governor = [] {
    auto* g = new MemGovernor(&MetricsRegistry::Default());
    g->RegisterPool(kFramePathPool, kDefaultFramePathBytes);
    g->RegisterPool(kMemtablePool, kDefaultMemtableBytes);
    g->RegisterPool(kMergePool, kDefaultMergeBytes);
    g->RegisterPool(kSpillPool, kDefaultSpillBytes);
    g->RegisterPool(kSpanRingPool, kDefaultSpanRingBytes);
    g->RegisterPool(kWalPool, kDefaultWalBytes);
    return g;
  }();
  return *governor;
}

MemPool* MemGovernor::RegisterPool(const std::string& name,
                                   int64_t capacity_bytes) {
  MemPool* pool = nullptr;
  bool created = false;
  {
    MutexLock lock(mutex_);
    auto it = pools_.find(name);
    if (it != pools_.end()) {
      pool = it->second.get();
    } else {
      auto owned =
          std::unique_ptr<MemPool>(new MemPool(name, capacity_bytes));
      pool = owned.get();
      pool->callback_.store(callback_);
      pools_.emplace(name, std::move(owned));
      created = true;
    }
  }
  if (created && registry_ != nullptr) {
    // Providers are registered OUTSIDE mutex_: RegisterProvider takes
    // the registry's kMetricsProviders lock, which ranks far above
    // kMemGovernor. Only the creating thread reaches this branch, so
    // the pool gains its providers exactly once.
    std::vector<MetricsRegistry::ProviderHandle> handles;
    const MetricLabels labels = {{"pool", name}};
    handles.push_back(registry_->RegisterProvider(
        "common_mempool_capacity_bytes", MetricsRegistry::ProviderKind::kGauge,
        labels, [pool] { return pool->capacity(); }));
    handles.push_back(registry_->RegisterProvider(
        "common_mempool_used_bytes", MetricsRegistry::ProviderKind::kGauge,
        labels, [pool] { return pool->used(); }));
    handles.push_back(registry_->RegisterProvider(
        "common_mempool_high_water_bytes",
        MetricsRegistry::ProviderKind::kGauge, labels,
        [pool] { return pool->high_water(); }));
    handles.push_back(registry_->RegisterProvider(
        "common_mempool_exhausted_total",
        MetricsRegistry::ProviderKind::kCounter, labels,
        [pool] { return pool->exhausted_count(); }));
    handles.push_back(registry_->RegisterProvider(
        "common_mempool_overdraft_total",
        MetricsRegistry::ProviderKind::kCounter, labels,
        [pool] { return pool->overdraft_count(); }));
    MutexLock lock(mutex_);
    for (auto& h : handles) provider_handles_.push_back(std::move(h));
  }
  return pool;
}

MemPool* MemGovernor::GetPool(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MemGovernor::PoolNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) names.push_back(name);
  return names;
}

void MemGovernor::SetExhaustionCallback(MemPool::ExhaustionCallback callback) {
  auto shared = std::make_shared<const MemPool::ExhaustionCallback>(
      std::move(callback));
  MutexLock lock(mutex_);
  callback_ = shared;
  for (auto& [name, pool] : pools_) pool->callback_.store(shared);
}

#ifndef ASTERIX_MODEL_CHECK
namespace {
// Warm the default governor during static initialization (single
// threaded, no locks held): the first Default() call registers the
// per-pool metric providers under kMetricsProviders (rank 490), which
// must never nest inside a lower-ranked subsystem lock — and without
// this, "first call" is whichever subsystem constructor happens to run
// first, typically under its owner's mutex. (Model builds skip the
// warmup: checked executions build their own governors, and a static
// Default() instance would feed the checker's pass-through path for
// nothing.)
[[maybe_unused]] const bool kWarmDefaultGovernor =
    (MemGovernor::Default(), true);
}  // namespace
#endif  // ASTERIX_MODEL_CHECK

}  // namespace common
}  // namespace asterix
