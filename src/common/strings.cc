#include "common/strings.h"

#include <cctype>

namespace asterix {
namespace common {

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(Trim(s.substr(start)));
      break;
    }
    out.emplace_back(Trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace common
}  // namespace asterix
