// Lock-free data plane: bounded MPMC frame rings for the hot hand-off
// paths (task pump, joint -> subscriber), plus the parking layer that
// lets consumers block when idle instead of spinning.
//
// Three components:
//
//   * EventCount — a Dekker-style wait/notify gate (condvar fallback of a
//     futex eventcount). Waiters announce themselves with a sequenced
//     epoch read; notifiers bump the epoch and only touch the condvar
//     when a waiter is registered, so the notify fast path with no waiter
//     is one seq_cst load. This is the ONLY place the data plane takes a
//     mutex, and that mutex is the dedicated leaf rank kQueueParking:
//     nothing is ever acquired under it, so it can be taken while holding
//     any other lock in the system.
//
//   * MpmcQueue<T> — a bounded Vyukov MPMC ring. Each slot carries a
//     sequence counter; the slot protocol (below) makes a push/pop pair a
//     single CAS plus one release store, with no mutex on the fast path.
//     Batch APIs (TryPushN / PopAllBounded / PopAll) match
//     BlockingQueue's batching semantics so the pump-side "one wakeup
//     drains everything" speedup carries over.
//
//   * OverwriteQueue<T> — a lossy newest-wins adapter over MpmcQueue for
//     Discard-policy feeds and telemetry-grade streams: a full ring
//     displaces the OLDEST element (handed back to the caller so owned
//     resources can be released) instead of blocking the producer.
//
// Slot sequence protocol (the memory-ordering argument, also in
// DESIGN.md): slot i stores seq. Initially seq = i. Invariants:
//
//     seq == pos          slot is FREE for the producer whose ticket is
//                         pos (ticket = enqueue_pos_ value it CASed)
//     seq == pos + 1      slot is FULL for the consumer whose ticket is
//                         pos (ticket = dequeue_pos_ value it CASed)
//     otherwise           another thread's ticket owns the slot; retry
//                         with a fresh ticket or report empty/full
//
// A producer that wins the CAS on enqueue_pos_ owns slot
// (ticket & mask) exclusively: no other producer can obtain the same
// ticket, and consumers spin out until seq becomes ticket + 1. It
// constructs the element, then publishes with a RELEASE store of
// seq = ticket + 1. The consumer's ACQUIRE load of seq synchronizes
// with that store, so the element construction happens-before the
// consumer's read — the element itself needs no atomics. The consumer
// frees the slot for the next lap with a release store of
// seq = ticket + capacity. Ticket counters only move forward via CAS,
// so every (ticket, slot) pairing is unique: ABA cannot occur within
// 2^64 operations.
//
// Rank exemption: MpmcQueue/OverwriteQueue themselves carry NO LockRank —
// there is nothing to rank; the fast path performs no acquisition the
// deadlock detector could order. The parking mutex inside EventCount is
// ranked kQueueParking (the lowest rank in the table) so the slow path
// stays visible to the runtime checker. The linter's SPIN-PARK check
// keeps raw atomic spin loops confined to this header, where every spin
// is bounded and falls back to parking.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/atomic_shim.h"
#include "common/thread_annotations.h"

// Historical-bug mutations (tests/model/ regression seeds ONLY). Each
// reintroduces a real bug a past PR shipped and fixed; the model checker
// must find every one within its exploration budget, proving it would
// have caught them. They are compile errors outside model builds so a
// stray define can never weaken production code.
#if (defined(ASTERIX_MC_BUG_LOST_WAKEUP) ||  \
     defined(ASTERIX_MC_BUG_WAITER_LEAK) ||  \
     defined(ASTERIX_MC_BUG_RELAXED_UNLOCK)) && \
    !defined(ASTERIX_MODEL_CHECK)
#error "ASTERIX_MC_BUG_* mutations are only legal under ASTERIX_MODEL_CHECK"
#endif

namespace asterix {
namespace common {

/// Condvar-backed eventcount: the parking/wakeup layer under the
/// lock-free rings. Usage (the standard prepare/recheck/commit dance):
///
///     uint64_t epoch = ec.PrepareWait();
///     if (condition_now_true()) { ec.CancelWait(); return; }
///     ec.Wait(epoch);            // or ec.WaitFor(epoch, timeout)
///
/// Notify() is cheap when nobody waits: one seq_cst fence + one load of
/// the waiter count. The fence pairing between PrepareWait's seq_cst
/// fetch_add and the fence in NotifyAll guarantees a notifier either
/// sees the waiter (and takes the mutex to wake it) or the waiter's
/// recheck sees the notifier's state change — never neither.
class EventCount {
 public:
  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Registers this thread as a prospective waiter and returns the epoch
  /// to pass to Wait(). The caller MUST then re-check its condition and
  /// either Wait() or CancelWait().
  uint64_t PrepareWait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_acquire);
  }

  void CancelWait() { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Registered-waiter count (monitoring/tests). Transiently nonzero
  /// inside a PrepareWait..Wait/CancelWait window; a value that stays
  /// nonzero with no thread parked is a leaked registration, which
  /// permanently pessimizes the NotifyAll fast path.
  uint64_t waiters() const {
    return waiters_.load(std::memory_order_seq_cst);
  }

  /// Parks until the epoch moves past `epoch`. Consumes the PrepareWait
  /// registration.
  void Wait(uint64_t epoch) {
    MutexLock lock(mutex_);
    while (epoch_.load(std::memory_order_acquire) == epoch) {
      cv_.Wait(mutex_);
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Parks until the epoch moves or `timeout` elapses. Returns false on
  /// timeout. Consumes the PrepareWait registration either way.
  template <typename Rep, typename Period>
  bool WaitFor(uint64_t epoch,
               const std::chrono::duration<Rep, Period>& timeout) {
    auto deadline = SteadyNow() + timeout;
    bool woken = true;
    {
      MutexLock lock(mutex_);
      while (epoch_.load(std::memory_order_acquire) == epoch) {
        auto now = SteadyNow();
        if (now >= deadline) {
          woken = false;
          break;
        }
        (void)cv_.WaitFor(mutex_, deadline - now);
      }
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    return woken;
  }

  /// Wakes every parked waiter (they re-check their condition). One
  /// fence + load when nobody waits.
  void NotifyAll() {
    // The caller's preceding condition change is typically only a
    // RELEASE store (closed_, a slot's seq, the subscriber's ended_),
    // and a release store followed by a load — even a seq_cst load —
    // may be StoreLoad-reordered (on x86 both compile to plain MOVs).
    // Without a full barrier here the notifier can read waiters_ == 0
    // while a concurrently registering waiter's recheck still reads the
    // stale condition: both sides miss and the waiter parks forever.
    // The seq_cst fence pairs with PrepareWait's seq_cst fetch_add
    // (the standard eventcount requirement): either this load observes
    // the registration, or the waiter's recheck observes the condition
    // change — never neither.
#ifndef ASTERIX_MC_BUG_LOST_WAKEUP  // mutation: drop the fence (PR 5 bug)
    AtomicFence(std::memory_order_seq_cst);
#endif
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      MutexLock lock(mutex_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.NotifyAll();
  }

 private:
  Atomic<uint64_t> epoch_{0};
  Atomic<uint64_t> waiters_{0};
  // The data plane's only mutex: a dedicated leaf rank, held for a few
  // instructions around the epoch bump / condvar wait.
  Mutex mutex_{LockRank::kQueueParking};
  CondVar cv_;
};

/// Atomic publication slot for immutable copy-on-write snapshots:
/// readers `load()` a shared_ptr to the current snapshot, writers
/// publish a replacement with `store()`. The narrow load/store surface
/// of std::atomic<std::shared_ptr<T>>, which it deliberately replaces.
///
/// Why not std::atomic<std::shared_ptr<T>>: libstdc++'s _Sp_atomic
/// guards a PLAIN pointer field with an embedded one-word lock bit, and
/// its load() releases that lock with a RELAXED fetch_sub
/// (bits/shared_ptr_atomic.h). A relaxed unlock synchronizes-with
/// nothing, so a reader's plain pointer read and the NEXT writer's
/// plain pointer write carry no happens-before edge — a formal data
/// race under the C++ memory model that only the hardware's temporal
/// mutual exclusion on the lock bit papers over. ThreadSanitizer
/// (correctly) reports it. This class is the same lock-bit design with
/// an acquire lock and a RELEASE unlock on BOTH paths, so consecutive
/// critical sections are ordered in every direction — for the model and
/// for TSan alike.
///
/// The spin is legitimate here (this header is the SPIN-PARK
/// allowlist): the critical section is one shared_ptr refcount
/// operation — a handful of instructions, no blocking call — so a
/// contender waits nanoseconds unless the holder is descheduled, and
/// then it yields its quantum instead of burning it.
template <typename T>
class SnapshotPtr {
 public:
  SnapshotPtr() = default;
  explicit SnapshotPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}
  SnapshotPtr(const SnapshotPtr&) = delete;
  SnapshotPtr& operator=(const SnapshotPtr&) = delete;

  /// Returns the current snapshot. The refcount bump happens under the
  /// lock bit, so the snapshot cannot be released out from under the
  /// copy by a concurrent store().
  std::shared_ptr<T> load() const {
    Lock();
    std::shared_ptr<T> snapshot = ptr_.Copy();
    Unlock();
    return snapshot;
  }

  /// Publishes `next`. The displaced snapshot's refcount drop — and any
  /// destruction it triggers — runs after the lock bit is released, so
  /// a snapshot with a non-trivial destructor never extends the
  /// critical section.
  void store(std::shared_ptr<T> next) {
    Lock();
    ptr_.SwapWith(next);
    Unlock();
  }

 private:
  void Lock() const {
    // Test-and-test-and-set: the winning exchange's ACQUIRE pairs with
    // the RELEASE in Unlock, ordering the previous holder's ptr_ access
    // before this holder's.
    while (locked_.exchange(true, std::memory_order_acquire)) {
      SpinWaitWhile(locked_, true);
    }
  }

  void Unlock() const {
#ifdef ASTERIX_MC_BUG_RELAXED_UNLOCK
    // Mutation: libstdc++ _Sp_atomic's relaxed unlock — the data race
    // that forced this class to exist. The checker must flag the ptr_
    // access conflict between consecutive critical sections.
    locked_.store(false, std::memory_order_relaxed);
#else
    locked_.store(false, std::memory_order_release);
#endif
  }

  mutable Atomic<bool> locked_{false};
  DataCell<std::shared_ptr<T>> ptr_;  // guarded by locked_
};

/// Bounded lock-free MPMC ring (Vyukov). Capacity is rounded up to a
/// power of two. Drop-in for the BlockingQueue hot-path surface:
/// Push/TryPush/Pop/PopAll/PopAllFor/TryPopAll/Close keep the same
/// semantics (Close lets consumers drain, then Pop returns nullopt and
/// PopAll returns empty; Push fails after Close).
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : mask_(RoundUpPow2(capacity) - 1), slots_(mask_ + 1) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    // Destroy whatever is still enqueued (no concurrent access by now).
    T item;
    while (TryPopInto(&item)) {
    }
  }

  size_t capacity() const { return mask_ + 1; }

  /// Approximate depth (exact when quiescent; transiently off by the
  /// number of in-flight operations otherwise). For monitoring only.
  size_t size() const {
    uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<size_t>(tail - head) : 0;
  }

  bool empty() const { return size() == 0; }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Prospective-consumer registrations on the not-empty gate
  /// (monitoring/tests): every timed-out or cancelled wait must return
  /// this to zero once no consumer is blocked.
  uint64_t consumer_waiters() const { return not_empty_.waiters(); }

  /// Non-blocking push. False when the ring is full or closed. The
  /// by-value overload consumes `item` either way; TryPushFrom leaves
  /// `item` intact on failure (for callers with a fallback path).
  bool TryPush(T item) { return TryPushFrom(item); }

  bool TryPushFrom(T& item) {
    if (closed()) return false;
    if (!TryPushQuiet(std::move(item))) return false;
    not_empty_.NotifyAll();
    return true;
  }

  /// Pushes as many of items[0..n) as fit, in order. Returns the number
  /// consumed (prefix); the rest stay with the caller. One wakeup for
  /// the whole batch.
  ///
  /// Bulk ticket claim: a run of free slots is *verified* first, then
  /// claimed with a single CAS on the producer ticket — one atomic RMW
  /// per batch instead of per item. The verify-then-claim is sound
  /// because a slot observed free at generation `pos` can only leave
  /// that state via a producer claiming it, which requires advancing
  /// enqueue_pos_ past it — exactly what our CAS rules out.
  size_t TryPushN(T* items, size_t n) {
    if (closed()) return 0;
    size_t pushed = 0;
    while (pushed < n) {
      uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
      const size_t limit = n - pushed;
      size_t run = 0;
      intptr_t first_dif = 0;
      while (run < limit) {
        uint64_t p = pos + run;
        uint64_t seq = slots_[p & mask_].seq.load(std::memory_order_acquire);
        intptr_t dif =
            static_cast<intptr_t>(seq) - static_cast<intptr_t>(p);
        if (dif != 0) {
          if (run == 0) first_dif = dif;
          break;
        }
        ++run;
      }
      if (run == 0) {
        if (first_dif > 0) continue;  // stale ticket read: reload
        break;                        // genuinely full
      }
      if (!enqueue_pos_.compare_exchange_strong(
              pos, pos + run, std::memory_order_relaxed)) {
        continue;  // another producer moved the ticket: re-verify
      }
      for (size_t k = 0; k < run; ++k) {
        uint64_t p = pos + k;
        Slot& slot = slots_[p & mask_];
        slot.value.Set(std::move(items[pushed + k]));
        slot.seq.store(p + 1, std::memory_order_release);
      }
      pushed += run;
    }
    if (pushed > 0) not_empty_.NotifyAll();
    return pushed;
  }

  /// Blocking push: parks (no spinning) until space frees up or the
  /// queue closes. False when closed.
  bool Push(T item) {
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (closed()) return false;
      if (TryPushQuiet(std::move(item))) {
        not_empty_.NotifyAll();
        return true;
      }
      std::this_thread::yield();  // parking fallback below (SPIN-PARK)
    }
    for (;;) {
      if (closed()) return false;
      if (TryPushQuiet(std::move(item))) {
        not_empty_.NotifyAll();
        return true;
      }
      uint64_t epoch = not_full_.PrepareWait();
      if (closed() || !Full()) {
        not_full_.CancelWait();
        continue;
      }
      not_full_.Wait(epoch);
    }
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    T item;
    if (!TryPopInto(&item)) return std::nullopt;
    not_full_.NotifyAll();
    return item;
  }

  /// Blocking pop: drains even after Close; nullopt only when closed and
  /// drained.
  std::optional<T> Pop() {
    int spin = 0;
    for (;;) {
      std::optional<T> item = TryPop();
      if (item.has_value()) return item;
      if (closed()) {
        // Re-check: a racing producer may have published before Close.
        item = TryPop();
        return item;
      }
      if (spin < kSpinLimit) {
        ++spin;
        std::this_thread::yield();  // cedes the core to producers
        continue;
      }
      uint64_t epoch = not_empty_.PrepareWait();
      if (!empty() || closed()) {
        not_empty_.CancelWait();
        continue;
      }
      not_empty_.Wait(epoch);
    }
  }

  /// Pop with a deadline; nullopt on timeout or closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    auto deadline = SteadyNow() + timeout;
    for (;;) {
      std::optional<T> item = TryPop();
      if (item.has_value()) return item;
      if (closed()) return TryPop();
      uint64_t epoch = not_empty_.PrepareWait();
      if (!empty() || closed()) {
        not_empty_.CancelWait();
        continue;
      }
      auto now = SteadyNow();
      if (now >= deadline) {
        // WaitFor never runs on this branch, so it cannot consume the
        // PrepareWait registration — release it here or waiters_ leaks
        // and every future NotifyAll takes the parking mutex.
#ifndef ASTERIX_MC_BUG_WAITER_LEAK  // mutation: re-leak it (PR 5 bug)
        not_empty_.CancelWait();
#endif
        return TryPop();  // last look on the way out
      }
      if (!not_empty_.WaitFor(epoch, deadline - now)) {
        return TryPop();
      }
    }
  }

  /// Drains up to `max` queued items without blocking. One producer-side
  /// wakeup for the whole batch — the batched-hand-off contract the pump
  /// loops rely on (BlockingQueue::PopAll's lock-free analogue).
  ///
  /// Bulk ticket claim, mirroring TryPushN: verify a run of published
  /// slots (seq == pos+1), claim the whole run with one CAS on the
  /// consumer ticket, then move the values out. Slots in a verified run
  /// cannot regress — consuming one requires advancing dequeue_pos_
  /// past it, which the CAS rules out; producers cannot reuse it until a
  /// consumer frees it. So CAS success means exclusive ownership of the
  /// full run: one atomic RMW per batch instead of per item.
  std::vector<T> PopAllBounded(size_t max) {
    std::vector<T> drained;
    PopAllBoundedInto(&drained, max);
    return drained;
  }

  /// PopAllBounded appending into the caller's vector — the zero-alloc
  /// drain: a pump that clears and reuses one batch vector pays no heap
  /// allocation per wakeup once the vector's capacity has grown to the
  /// high-water batch size. Returns the number of items appended.
  size_t PopAllBoundedInto(std::vector<T>* out, size_t max) {
    const size_t start = out->size();
    while (out->size() - start < max) {
      uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
      const size_t limit =
          std::min(max - (out->size() - start), capacity());
      size_t run = 0;
      intptr_t first_dif = 0;
      while (run < limit) {
        uint64_t p = pos + run;
        uint64_t seq = slots_[p & mask_].seq.load(std::memory_order_acquire);
        intptr_t dif =
            static_cast<intptr_t>(seq) - static_cast<intptr_t>(p + 1);
        if (dif != 0) {
          if (run == 0) first_dif = dif;
          break;
        }
        ++run;
      }
      if (run == 0) {
        if (first_dif > 0) continue;  // stale ticket read: reload
        break;                        // genuinely empty
      }
      if (!dequeue_pos_.compare_exchange_strong(
              pos, pos + run, std::memory_order_relaxed)) {
        continue;  // another consumer moved the ticket: re-verify
      }
      out->reserve(out->size() + run);
      for (size_t k = 0; k < run; ++k) {
        uint64_t p = pos + k;
        Slot& slot = slots_[p & mask_];
        // Take() also resets the slot: payload refs drop eagerly
        // (frames are counted).
        out->push_back(slot.value.Take());
        slot.seq.store(p + mask_ + 1, std::memory_order_release);
      }
      if (run < limit) break;  // partial run: nothing more published yet
    }
    const size_t appended = out->size() - start;
    if (appended > 0) not_full_.NotifyAll();
    return appended;
  }

  /// Non-blocking full drain.
  std::vector<T> TryPopAll() { return PopAllBounded(SIZE_MAX); }

  /// Blocks until at least one item is available (or closed), then
  /// drains everything queued. Empty only when closed and drained.
  std::vector<T> PopAll() {
    int spin = 0;
    for (;;) {
      std::vector<T> drained = TryPopAll();
      if (!drained.empty()) return drained;
      if (closed()) return TryPopAll();
      if (spin < kSpinLimit) {
        ++spin;
        std::this_thread::yield();  // cedes the core to producers
        continue;
      }
      uint64_t epoch = not_empty_.PrepareWait();
      if (!empty() || closed()) {
        not_empty_.CancelWait();
        continue;
      }
      not_empty_.Wait(epoch);
    }
  }

  /// Blocking PopAll appending into the caller's vector (see
  /// PopAllBoundedInto). Returns the number appended; 0 only when closed
  /// and drained.
  size_t PopAllInto(std::vector<T>* out) {
    int spin = 0;
    for (;;) {
      size_t appended = PopAllBoundedInto(out, SIZE_MAX);
      if (appended > 0) return appended;
      if (closed()) return PopAllBoundedInto(out, SIZE_MAX);
      if (spin < kSpinLimit) {
        ++spin;
        std::this_thread::yield();  // cedes the core to producers
        continue;
      }
      uint64_t epoch = not_empty_.PrepareWait();
      if (!empty() || closed()) {
        not_empty_.CancelWait();
        continue;
      }
      not_empty_.Wait(epoch);
    }
  }

  /// PopAll with a deadline; empty on timeout or closed-and-drained.
  std::vector<T> PopAllFor(std::chrono::milliseconds timeout) {
    auto deadline = SteadyNow() + timeout;
    for (;;) {
      std::vector<T> drained = TryPopAll();
      if (!drained.empty()) return drained;
      if (closed()) return TryPopAll();
      uint64_t epoch = not_empty_.PrepareWait();
      if (!empty() || closed()) {
        not_empty_.CancelWait();
        continue;
      }
      auto now = SteadyNow();
      if (now >= deadline) {
        not_empty_.CancelWait();  // WaitFor never ran; see PopFor
        return TryPopAll();
      }
      if (!not_empty_.WaitFor(epoch, deadline - now)) {
        return TryPopAll();
      }
    }
  }

  /// Closes the queue: Pushes fail, consumers drain then see empty.
  /// Idempotent.
  void Close() {
    closed_.store(true, std::memory_order_release);
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

 private:
  struct Slot {
    Atomic<uint64_t> seq{0};
    DataCell<T> value;
  };

  // On a single hardware thread spinning only burns the timeslice, so
  // the spin budget is deliberately tiny; parking does the real waiting.
  // Under TSan every instruction is ~10-20x slower and the scheduler is
  // already oversubscribed, so even a short yield loop can starve
  // unrelated timing-sensitive threads (heartbeats) — park immediately.
  // Under the model checker yields are no-ops and every atomic op costs
  // a scheduling decision, so spinning only inflates the state space.
#if defined(__SANITIZE_THREAD__) || defined(ASTERIX_MODEL_CHECK)
  static constexpr int kSpinLimit = 0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  static constexpr int kSpinLimit = 0;
#else
  static constexpr int kSpinLimit = 16;
#endif
#else
  static constexpr int kSpinLimit = 16;
#endif

  static size_t RoundUpPow2(size_t v) {
    size_t p = 2;  // capacity 1 would make `full` and `empty` coincide
    while (p < v && p < (size_t{1} << 62)) p <<= 1;
    return p;
  }

  bool Full() const { return size() >= capacity(); }

  /// TryPush without the wakeup (batch paths notify once). Moves from
  /// `item` only on success.
  bool TryPushQuiet(T&& item) {
    Slot* slot;
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      uint64_t seq = slot->seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value.Set(std::move(item));
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Core consumer step; no wakeup (callers batch their notifies).
  bool TryPopInto(T* out) {
    Slot* slot;
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      uint64_t seq = slot->seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) -
                     static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // slot not yet published: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    // Take() also resets the slot: payload refs drop eagerly (frames
    // are counted).
    *out = slot->value.Take();
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  const uint64_t mask_;
  std::vector<Slot> slots_;
  // Producer and consumer tickets. Kept apart from the slots so false
  // sharing between the two sides stays off the slot array.
  alignas(64) Atomic<uint64_t> enqueue_pos_{0};
  alignas(64) Atomic<uint64_t> dequeue_pos_{0};
  alignas(64) Atomic<bool> closed_{false};
  EventCount not_empty_;
  EventCount not_full_;
};

/// Lossy newest-wins ring over MpmcQueue: a full ring displaces the
/// OLDEST queued element instead of rejecting the newest or blocking the
/// producer. For Discard-policy feeds and monitoring streams where a
/// stalled consumer must never wedge the producer and the freshest data
/// is the valuable data.
template <typename T>
class OverwriteQueue {
 public:
  explicit OverwriteQueue(size_t capacity) : ring_(capacity) {}

  size_t capacity() const { return ring_.capacity(); }
  size_t size() const { return ring_.size(); }
  bool closed() const { return ring_.closed(); }

  /// Number of elements displaced by Push since construction.
  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Never blocks and never fails while open: displaces the oldest
  /// element when full. If `displaced` is non-null the first victim is
  /// moved into it so the caller can release owned resources. Returns
  /// false only when the queue is closed (the item is dropped).
  bool Push(T item, std::optional<T>* displaced = nullptr) {
    if (displaced != nullptr) displaced->reset();
    for (;;) {
      if (ring_.closed()) return false;
      if (ring_.TryPushFrom(item)) return true;
      std::optional<T> victim = ring_.TryPop();
      if (victim.has_value()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        if (displaced != nullptr && !displaced->has_value()) {
          *displaced = std::move(victim);
        }
        // Else: victim destroyed here; the caller did not want it.
      } else {
        // Push failed AND nothing was displaceable: a peer claimed a
        // slot (CAS won) but has not finished its copy, so the ring
        // looks full to the pusher and empty to the displacer at once.
        // Only that peer's progress unsticks us — cede the core. The
        // model checker found the starving schedule; SpinYield is its
        // fairness point as much as the scheduler's.
        SpinYield();
      }
      // Retry: between our pop and push another producer may have taken
      // the freed slot; the loop converges once stalled peers run.
    }
  }

  /// Plain bounded push (no displacement): false when full or closed.
  /// Callers that want lossless-until-full behaviour with their own
  /// overflow handling (the subscriber queue's non-Discard modes) use
  /// these; Discard-mode callers use Push. TryPushFrom leaves `item`
  /// intact on failure.
  bool TryPush(T item) { return ring_.TryPushFrom(item); }
  bool TryPushFrom(T& item) { return ring_.TryPushFrom(item); }

  bool empty() const { return ring_.empty(); }

  std::optional<T> TryPop() { return ring_.TryPop(); }
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    return ring_.PopFor(timeout);
  }
  std::vector<T> PopAllBounded(size_t max) {
    return ring_.PopAllBounded(max);
  }
  size_t PopAllBoundedInto(std::vector<T>* out, size_t max) {
    return ring_.PopAllBoundedInto(out, max);
  }
  std::vector<T> TryPopAll() { return ring_.TryPopAll(); }
  void Close() { ring_.Close(); }

 private:
  MpmcQueue<T> ring_;
  Atomic<int64_t> dropped_{0};
};

}  // namespace common
}  // namespace asterix
