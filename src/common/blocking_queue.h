// Bounded MPMC blocking queue. The backbone of operator-to-operator data
// movement: bounded capacity provides natural back-pressure (the "Basic"
// ingestion policy), and the non-blocking / timed push variants are the
// hooks used by the Discard / Spill / Throttle policy runtimes.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"

namespace asterix {
namespace common {

template <typename T>
class BlockingQueue {
 public:
  /// `rank` names the queue's position in the lock hierarchy
  /// (common/lock_rank.h). Embedding classes pass the rank of the seam
  /// the queue sits on (kTweetChannel, kStormQueue, ...); free-standing
  /// queues default to kBlockingQueue.
  explicit BlockingQueue(size_t capacity = SIZE_MAX,
                         LockRank rank = LockRank::kBlockingQueue)
      : capacity_(capacity), mutex_(rank) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed.
  bool Push(T item) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    not_full_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push. Returns false (item not consumed) when full/closed.
  bool TryPush(T item) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Push that gives up after `timeout`. Returns false on timeout/closed.
  bool PushFor(T item, std::chrono::milliseconds timeout) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!not_full_.WaitFor(mutex_, timeout, [this]() REQUIRES(mutex_) {
          return closed_ || items_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    not_empty_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Pop with a deadline; nullopt on timeout or on closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout)
      EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!not_empty_.WaitFor(mutex_, timeout, [this]() REQUIRES(mutex_) {
          return closed_ || !items_.empty();
        })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and drained), then drains everything queued under one lock
  /// acquisition. A batch of k frames costs one lock op instead of k.
  /// Returns an empty vector only when the queue is closed and drained.
  std::vector<T> PopAll() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    not_empty_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    return DrainLocked();
  }

  /// PopAll with a deadline; an empty vector on timeout or on
  /// closed-and-drained.
  std::vector<T> PopAllFor(std::chrono::milliseconds timeout)
      EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!not_empty_.WaitFor(mutex_, timeout, [this]() REQUIRES(mutex_) {
          return closed_ || !items_.empty();
        })) {
      return {};
    }
    return DrainLocked();
  }

  /// Non-blocking drain of everything currently queued.
  std::vector<T> TryPopAll() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return DrainLocked();
  }

  std::optional<T> TryPop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: pending Pops drain remaining items then return
  /// nullopt; all Pushes fail. Idempotent.
  void Close() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool empty() const { return size() == 0; }

 private:
  /// Moves all queued items out. Caller holds mutex_.
  std::vector<T> DrainLocked() REQUIRES(mutex_) {
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (T& item : items_) drained.push_back(std::move(item));
    items_.clear();
    if (!drained.empty()) not_full_.NotifyAll();
    return drained;
  }

  const size_t capacity_;
  mutable Mutex mutex_;  // LOCK-RANK: ctor-injected (see constructor)
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace common
}  // namespace asterix
