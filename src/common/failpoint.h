// Deterministic fault injection. A FailPoint is a named site compiled into
// a hot seam of the system (adaptor fetch, WAL append, task pump, ...).
// Tests arm sites with a policy — fire once, fire every Nth pass, fire with
// a seeded probability — and an action: inject a Status error, throw (at
// sandbox boundaries that speak exceptions), sleep, or run a callback.
//
// Design goals, in order:
//   1. Zero overhead when nothing is armed: the macros check one relaxed
//      atomic counter and fall through.
//   2. Compiled out entirely when ASTERIX_FAILPOINTS is not defined (the
//      CMake option of the same name controls this), so release builds
//      carry no trace of the instrumentation.
//   3. Determinism: probability triggers draw from a per-site Rng seeded
//      at arm time, so a failing run is reproducible from its seed.
//
// Site naming convention: "<layer>.<component>.<verb>", e.g.
// "storage.wal.append" or "hyracks.node.heartbeat". Sites that differ per
// runtime instance (one heartbeat loop per node) pass an instance string;
// a policy may restrict firing to one instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace common {

/// When and what a failpoint does once armed.
struct FailPointPolicy {
  enum class Trigger {
    kAlways,       // every pass through the site
    kOnce,         // the first pass only (shorthand: max_fires = 1)
    kEveryNth,     // passes N, 2N, 3N, ... (N = every_nth)
    kProbability,  // Bernoulli(probability) under the site's seeded Rng
  };
  enum class Action {
    kError,     // Evaluate() returns `error`; ASTERIX_FAILPOINT returns it
    kThrow,     // ASTERIX_FAILPOINT_THROW raises std::runtime_error
    kDelay,     // sleep delay_ms, then continue normally
    kCallback,  // run `callback`, then continue normally
  };

  Trigger trigger = Trigger::kAlways;
  Action action = Action::kError;

  int64_t every_nth = 1;       // for kEveryNth
  double probability = 1.0;    // for kProbability
  uint64_t seed = 42;          // seeds the site Rng for kProbability
  int64_t skip_first = 0;      // ignore the first K passes
  int64_t max_fires = -1;      // stop firing after this many (-1 = no cap)
  std::string instance;        // fire only for this instance ("" = all)

  Status error = Status::Internal("injected fault");
  int64_t delay_ms = 0;
  std::function<void()> callback;

  // --- fluent builders for test brevity -------------------------------
  static FailPointPolicy Error(Status status) {
    FailPointPolicy p;
    p.action = Action::kError;
    p.error = std::move(status);
    return p;
  }
  static FailPointPolicy Throw(std::string message) {
    FailPointPolicy p;
    p.action = Action::kThrow;
    p.error = Status::Internal(std::move(message));
    return p;
  }
  static FailPointPolicy Delay(int64_t ms) {
    FailPointPolicy p;
    p.action = Action::kDelay;
    p.delay_ms = ms;
    return p;
  }
  static FailPointPolicy Call(std::function<void()> fn) {
    FailPointPolicy p;
    p.action = Action::kCallback;
    p.callback = std::move(fn);
    return p;
  }
  FailPointPolicy& Once() {
    trigger = Trigger::kOnce;
    return *this;
  }
  FailPointPolicy& EveryNth(int64_t n) {
    trigger = Trigger::kEveryNth;
    every_nth = n;
    return *this;
  }
  // Leave `rng_seed` at its default inside a ChaosSchedule step to have a
  // per-step seed derived from the schedule seed.
  FailPointPolicy& WithProbability(double p, uint64_t rng_seed = 42) {
    trigger = Trigger::kProbability;
    probability = p;
    seed = rng_seed;
    return *this;
  }
  FailPointPolicy& SkipFirst(int64_t k) {
    skip_first = k;
    return *this;
  }
  FailPointPolicy& MaxFires(int64_t n) {
    max_fires = n;
    return *this;
  }
  FailPointPolicy& OnInstance(std::string id) {
    instance = std::move(id);
    return *this;
  }
};

/// Global registry of armed failpoints. All methods are thread-safe; the
/// disarmed fast path (AnyArmed) is one relaxed atomic load.
class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  /// Arms (or re-arms, resetting counters) the named site.
  void Arm(const std::string& site, FailPointPolicy policy);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// True if any site is currently armed. The macros gate on this before
  /// paying for the map lookup.
  // relaxed: fast-path hint only; Evaluate re-reads the armed set under
  // the registry mutex, so a stale zero just skips one evaluation window
  // around Arm — acceptable for a chaos-testing facility.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the site: returns non-OK iff an error/throw action fired
  /// (throw sites convert the status into an exception at the macro).
  /// Delay/callback actions run here and still return OK.
  [[nodiscard]] Status Evaluate(const std::string& site, const std::string& instance = "");

  /// Diagnostics: passes through the site while armed / times it fired.
  int64_t Hits(const std::string& site) const;
  int64_t Fires(const std::string& site) const;

 private:
  struct ArmedPoint {
    FailPointPolicy policy;
    Rng rng{42};
    int64_t hits = 0;
    int64_t fires = 0;
  };

  FailPointRegistry() = default;

  static std::atomic<int64_t> armed_count_;
  mutable Mutex mutex_{LockRank::kFailPointRegistry};
  std::map<std::string, ArmedPoint> points_ GUARDED_BY(mutex_);
};

/// True when the failpoint macros are compiled in (ASTERIX_FAILPOINTS=ON).
#ifdef ASTERIX_FAILPOINTS
inline constexpr bool kFailPointsCompiledIn = true;
#else
inline constexpr bool kFailPointsCompiledIn = false;
#endif

/// A scripted fault timeline: arm/disarm steps at offsets from Start().
/// One seed reproduces the whole run — steps that use probability triggers
/// and leave the policy seed at its default get a per-step seed derived
/// from the schedule seed, so `ChaosSchedule(s)` is a single knob.
class ChaosSchedule {
 public:
  explicit ChaosSchedule(uint64_t seed = 42);
  ~ChaosSchedule();

  uint64_t seed() const { return seed_; }

  /// Arm `site` with `policy` at `at_ms` after Start().
  ChaosSchedule& ArmAt(int64_t at_ms, std::string site,
                       FailPointPolicy policy);
  /// Disarm `site` at `at_ms` after Start().
  ChaosSchedule& DisarmAt(int64_t at_ms, std::string site);

  /// Launches the driver thread. Steps run in at_ms order.
  void Start();
  /// Joins the driver and disarms every site the schedule touched.
  void Stop();

 private:
  struct Step {
    int64_t at_ms;
    std::string site;
    std::optional<FailPointPolicy> policy;  // nullopt = disarm
  };

  void DriverMain();

  const uint64_t seed_;
  Rng seeder_;
  std::vector<Step> steps_;
  Mutex mutex_{LockRank::kChaosSchedule};
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
  bool started_ = false;  // touched only by the owning (test) thread
  std::thread driver_;
};

}  // namespace common
}  // namespace asterix

// --- instrumentation macros -------------------------------------------
//
// ASTERIX_FAILPOINT(site): statement. In a Status- or Result-returning
//   function, returns the injected error when the site fires.
// ASTERIX_FAILPOINT_THROW(site): statement. Throws std::runtime_error when
//   the site fires — for seams whose failure contract is an exception
//   (UDFs, operators under the MetaFeed sandbox).
// ASTERIX_FAILPOINT_TRIGGERED(site[, instance]): expression, true when the
//   site fires with an error action — for drop/skip semantics where the
//   caller decides what "failing" means (drop an ack, skip a heartbeat).
// ASTERIX_FAILPOINT_HIT(site): statement, ignores any error — for sites
//   that only make sense as delay/callback probes.
#ifdef ASTERIX_FAILPOINTS

#define ASTERIX_FAILPOINT(site)                                          \
  do {                                                                   \
    if (::asterix::common::FailPointRegistry::AnyArmed()) {              \
      ::asterix::common::Status _fp_status =                             \
          ::asterix::common::FailPointRegistry::Instance().Evaluate(     \
              site);                                                     \
      if (!_fp_status.ok()) return _fp_status;                           \
    }                                                                    \
  } while (0)

#define ASTERIX_FAILPOINT_THROW(site)                                    \
  do {                                                                   \
    if (::asterix::common::FailPointRegistry::AnyArmed()) {              \
      ::asterix::common::Status _fp_status =                             \
          ::asterix::common::FailPointRegistry::Instance().Evaluate(     \
              site);                                                     \
      if (!_fp_status.ok()) {                                            \
        throw std::runtime_error(_fp_status.message());                  \
      }                                                                  \
    }                                                                    \
  } while (0)

#define ASTERIX_FAILPOINT_TRIGGERED(...)                                 \
  (::asterix::common::FailPointRegistry::AnyArmed() &&                   \
   !::asterix::common::FailPointRegistry::Instance()                     \
        .Evaluate(__VA_ARGS__)                                           \
        .ok())

#define ASTERIX_FAILPOINT_HIT(site)                                      \
  do {                                                                   \
    if (::asterix::common::FailPointRegistry::AnyArmed()) {              \
      (void)::asterix::common::FailPointRegistry::Instance().Evaluate(   \
          site);                                                         \
    }                                                                    \
  } while (0)

#else  // !ASTERIX_FAILPOINTS

#define ASTERIX_FAILPOINT(site) \
  do {                          \
  } while (0)
#define ASTERIX_FAILPOINT_THROW(site) \
  do {                                \
  } while (0)
#define ASTERIX_FAILPOINT_TRIGGERED(...) (false)
#define ASTERIX_FAILPOINT_HIT(site) \
  do {                              \
  } while (0)

#endif  // ASTERIX_FAILPOINTS

