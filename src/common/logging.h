// Minimal leveled logger. Thread-safe; writes to stderr and optionally to a
// file (the AsterixDB "error log" that soft-failure records are appended to).
#pragma once

#include <sstream>
#include <string>

namespace asterix {
namespace common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global logger configuration.
class Logging {
 public:
  /// Messages below `level` are dropped. Default: kWarn (quiet tests).
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();

  /// Mirrors all emitted messages to `path` (append). Empty disables.
  static void SetLogFile(const std::string& path);
  static std::string log_file();

  static void Emit(LogLevel level, const std::string& message);
};

/// Stream-style one-shot log statement: LOG_MSG(kInfo) << "x=" << x;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logging::Emit(level_, stream_.str()); }
  template <typename T>
  LogStatement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace common
}  // namespace asterix

#define LOG_MSG(level) \
  ::asterix::common::LogStatement(::asterix::common::LogLevel::level)

