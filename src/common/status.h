// Status: lightweight error propagation for the core library (RocksDB idiom).
// Exceptions are reserved for user-provided code (UDFs, adaptors) and are
// caught at the MetaFeed sandbox boundary.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace asterix {
namespace common {

/// Result status of a fallible operation. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kIOError,
    kResourceExhausted,
    kFailedPrecondition,
    kAborted,
    kUnavailable,
    kInternal,
    kTimedOut,
    kNotSupported,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(Code::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(Code::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(Code::kAlreadyExists, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(Code::kCorruption, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(Code::kIOError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(Code::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(Code::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(Code::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(Code::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(Code::kInternal, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(Code::kTimedOut, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(Code::kNotSupported, std::move(m));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test output.
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

}  // namespace common
}  // namespace asterix

/// Propagates a non-OK status to the caller.
#define RETURN_IF_ERROR(expr)                          \
  do {                                                 \
    ::asterix::common::Status _st = (expr);            \
    if (!_st.ok()) return _st;                         \
  } while (0)

/// Aborts on a non-OK status. For benchmarks and tool mains where an error
/// is unrecoverable and the fix is in the harness, not the caller.
#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::asterix::common::Status _st = (expr);                        \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, _st.ToString().c_str());    \
      std::abort();                                                \
    }                                                              \
  } while (0)

