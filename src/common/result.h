// Result<T>: value-or-Status, for fallible functions that produce a value.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace asterix {
namespace common {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace common
}  // namespace asterix

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, otherwise propagates the error status to the caller.
#define ASTERIX_CONCAT_INNER(a, b) a##b
#define ASTERIX_CONCAT(a, b) ASTERIX_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                          \
  if (!tmp.ok()) return tmp.status();         \
  lhs = std::move(tmp).value();
#define ASSIGN_OR_RETURN(lhs, expr) \
  ASSIGN_OR_RETURN_IMPL(ASTERIX_CONCAT(_res_, __LINE__), lhs, expr)

