// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace asterix {
namespace common {

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (",a,," yields four pieces, three empty).
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Trims leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// FNV-1a 64-bit hash, used for hash-partitioning records by primary key.
uint64_t Fnv1a(std::string_view s);

}  // namespace common
}  // namespace asterix

