// Process-wide observability: a registry of named counters, gauges and
// log-bucketed latency histograms with a Prometheus-style text exposition
// and a consistent Snapshot() API.
//
// Design constraints (mirrors the FailPoint discipline from PR 2):
//   * Recording on the hot path is lock-free: Counter::Add, Gauge::Set and
//     Histogram::Record are a handful of relaxed atomic ops and never take
//     a mutex, so they are safe to call from any thread while holding any
//     lock (including storage/queue mutexes).
//   * Metric objects are owned by the registry and never deallocated while
//     the registry lives; callers cache the returned pointers.
//   * Pull-style metrics (values derived from live objects, e.g. pending
//     intake bytes) register a provider callback; providers are evaluated
//     under the provider mutex at Snapshot()/Export() time and unregister
//     via an RAII handle, so a dead object can never be polled.
//
// Lock ordering: the registry uses TWO mutexes so its rank is coherent
// from both sides (see common/lock_rank.h).
//   * mutex_ (kMetricsRegistry, a leaf) guards the metric maps only. It
//     is safe to call Get* while holding any pipeline or storage lock.
//   * providers_mutex_ (kMetricsProviders, near the top of the feeds
//     band) guards the provider list. Snapshot()/Export()/List() hold it
//     while running the callbacks — which take object-level mutexes
//     (ConnectionMetrics, subscriber queues) — so code holding those
//     object locks must never call Snapshot()/Export()/List(), only the
//     lock-free record calls on cached pointers. mutex_ is ACQUIRED_AFTER
//     providers_mutex_ (the export paths nest them in that order).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace asterix {
namespace common {

/// Label set attached to a metric, e.g. {{"connection", "Feed->Sink"}}.
/// Order-insensitive: the registry canonicalises by sorting on key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
// relaxed: metrics cells are export-only scalars — nothing is published
// through them and scrapes tolerate staleness, so no site needs
// ordering (applies to Counter and Gauge alike).
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time value that can move both ways.
class Gauge {
 public:
  // relaxed: see Counter — export-only metrics scalar.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed latency histogram. Bucket i holds values in
/// (2^(i-1), 2^i]; bucket 0 holds values <= 1. 48 buckets cover any
/// microsecond duration we can produce. Record() is wait-free.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(int64_t value);

  /// Upper bound of bucket i (for exposition).
  static int64_t BucketUpperBound(int i) { return int64_t{1} << i; }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Immutable copy of one histogram, with quantile estimation. Quantiles
/// are bucket upper bounds clamped by the tracked max, which guarantees
/// Quantile(a) <= Quantile(b) <= Max() for a <= b.
struct HistogramSnapshot {
  std::array<int64_t, Histogram::kBuckets> buckets{};
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;

  /// q in [0, 1]. Returns 0 when empty.
  int64_t Quantile(double q) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
};

/// Consistent point-in-time copy of every registered metric, including
/// provider-backed ones. Keys are canonical `name{k="v",...}` strings;
/// use the lookup helpers rather than building keys by hand.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Canonical key for a (name, labels) pair: labels sorted by key,
  /// values escaped, `name` alone when labels are empty.
  static std::string Key(const std::string& name, const MetricLabels& labels);

  /// Value lookups; counters/gauges return 0 when absent, histogram
  /// lookup returns nullptr when absent.
  int64_t CounterValue(const std::string& name,
                       const MetricLabels& labels = {}) const;
  int64_t GaugeValue(const std::string& name,
                     const MetricLabels& labels = {}) const;
  const HistogramSnapshot* Histogram(const std::string& name,
                                     const MetricLabels& labels = {}) const;
};

/// One registered metric, for enumeration (the metrics-smoke harness
/// cross-checks this list against the Export() text).
struct MetricInfo {
  std::string kind;    // "counter" | "gauge" | "histogram"
  std::string name;
  std::string labels;  // canonical `{k="v",...}` or "" when unlabeled
};

class MetricsRegistry {
 public:
  enum class ProviderKind { kCounter, kGauge };

  /// RAII registration of a pull-style metric. Destroying (or Reset()-ing)
  /// the handle removes the provider under the registry mutex, so after it
  /// returns no further callback invocation is possible.
  class ProviderHandle {
   public:
    ProviderHandle() = default;
    ProviderHandle(ProviderHandle&& other) noexcept;
    ProviderHandle& operator=(ProviderHandle&& other) noexcept;
    ProviderHandle(const ProviderHandle&) = delete;
    ProviderHandle& operator=(const ProviderHandle&) = delete;
    ~ProviderHandle() { Reset(); }
    void Reset();

   private:
    friend class MetricsRegistry;
    ProviderHandle(MetricsRegistry* registry, int64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    int64_t id_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the runtime. Tests may construct
  /// their own instances for isolation.
  static MetricsRegistry& Default();

  /// Get-or-create. Returned pointers are stable for the registry's
  /// lifetime — cache them and record lock-free.
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {});

  /// Registers a callback evaluated at Snapshot()/Export() time. The
  /// callback must stay valid until the returned handle is destroyed.
  ProviderHandle RegisterProvider(const std::string& name, ProviderKind kind,
                                  const MetricLabels& labels,
                                  std::function<int64_t()> fn);

  /// Point-in-time copy of everything (owned metrics + providers).
  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (one `# TYPE` line per metric
  /// name; histograms emit cumulative `_bucket{le=...}`, `_sum`,
  /// `_count`).
  std::string Export() const;

  /// Enumerates every registered metric (owned and provider-backed).
  std::vector<MetricInfo> List() const;

 private:
  struct Provider {
    int64_t id;
    ProviderKind kind;
    std::string key;  // canonical name{labels}
    std::string name;
    std::function<int64_t()> fn;
  };

  void Unregister(int64_t id) EXCLUDES(providers_mutex_);

  /// Provider list lock; held while callbacks run so ProviderHandle::Reset
  /// still guarantees no further invocation after it returns.
  mutable common::Mutex providers_mutex_{common::LockRank::kMetricsProviders};
  /// Metric-map lock, a leaf: Get* may run under any pipeline/storage lock.
  mutable common::Mutex mutex_ ACQUIRED_AFTER(providers_mutex_){
      common::LockRank::kMetricsRegistry};
  // key -> metric; unique_ptr keeps addresses stable across rehash.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
  // key -> bare metric name (for # TYPE grouping in Export()).
  std::map<std::string, std::string> names_ GUARDED_BY(mutex_);
  std::vector<Provider> providers_ GUARDED_BY(providers_mutex_);
  int64_t next_provider_id_ GUARDED_BY(providers_mutex_) = 1;
};

}  // namespace common
}  // namespace asterix

