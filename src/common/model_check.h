// Deterministic model checker for the lock-free data plane (loom/relacy
// style). Compiled ONLY into tests/model/ binaries (ASTERIX_MODEL_CHECK);
// production builds never see this translation unit.
//
// What it does (DESIGN.md §6.3 has the full treatment):
//
//   * Runs a small concurrent program — a `body` that spawns 1..5
//     threads of a few operations each against the repo's own
//     primitives — over and over, exploring a DIFFERENT thread
//     interleaving each time via depth-first search over the decision
//     tree of scheduling choices, until the space is exhausted or a
//     budget is hit. Threads are real std::threads, but only one runs
//     at a time: every shim operation (common/atomic_shim.h) parks the
//     thread and hands control to the scheduler, which picks the next
//     thread by consulting the DFS trail.
//
//   * Simulates weak memory for the DECLARED orderings. Each atomic
//     location keeps its full modification-order store history; a load
//     picks among the coherent readable stores (a value choice is its
//     own DFS decision), so a relaxed load can observe stale values and
//     a missing acquire/release/seq_cst edge is an explorable state.
//     Happens-before is tracked with vector clocks; seq_cst operations
//     additionally synchronize through a global SC clock (fences and
//     seq_cst RMWs join bidirectionally — slightly stronger than the
//     C++ abstract machine, matching the x86/ARM mappings; seq_cst
//     LOADS only acquire, modelling the plain-MOV compilation that made
//     the EventCount StoreLoad bug real).
//
//   * Detects: MODEL_ASSERT violations, data races on DataCell payloads
//     (vector-clock conflict check), deadlocks (every thread blocked
//     with no timeout to advance virtual time toward), and livelocks
//     (per-execution step bound). On failure it reports the full
//     interleaving trace (thread x op x value) plus a replay string
//     that reproduces the exact execution.
//
//   * Prunes redundant interleavings with sleep sets (partial-order
//     reduction): after exploring thread t at a choice point, sibling
//     branches skip t until an operation DEPENDENT on t's pending op
//     executes. Independence is conservative (same-location, same-lock,
//     SC-set conflicts), so the reduction never hides a failure.
//
// Time is virtual: SteadyNow() reads a clock that only advances when
// every thread is blocked, at which point it jumps to the earliest
// pending deadline (timed waiters wake with a timeout). Real time never
// leaks in, so executions are deterministic and replayable.
#pragma once

#ifndef ASTERIX_MODEL_CHECK
#error "model_check.h is only usable in ASTERIX_MODEL_CHECK builds"
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace asterix {
namespace mc {

// Thread 0 is the controlling thread (the body); up to 5 spawned.
inline constexpr int kMaxThreads = 6;

struct Options {
  // DFS budget: stop after this many executions even if the space is
  // not exhausted (Result::complete reports which happened).
  long max_executions = 100000;
  // Per-execution op bound; exceeding it is reported as a livelock.
  long max_steps = 20000;
  // Replay string from a previous failure report: explores exactly that
  // one execution (for debugging a dumped trace).
  std::string replay;
};

struct Result {
  bool ok = false;        // no failure found in any explored execution
  bool complete = false;  // the whole interleaving space was explored
  long executions = 0;    // schedules explored
  std::string failure;    // first failure message (empty when ok)
  std::string trace;      // thread x op x value trace of the failure
  std::string replay;     // decision string reproducing the failure

  // Convenience for EXPERIMENTS.md-style reporting.
  std::string Summary() const;
};

/// Handle the body uses to spawn checked threads. Spawn before Join;
/// Join runs the scheduler until every spawned thread finishes (their
/// clocks join the body's, like std::thread::join). Operations the body
/// performs before Spawn/after Join run single-threaded but still feed
/// the same memory model, so post-Join MODEL_ASSERTs read final state.
class Execution {
 public:
  /// Constructed by Check for each execution; do not instantiate outside
  /// a Check body.
  Execution() = default;
  void Spawn(std::function<void()> fn);
  /// Idempotent: a second Join (or one with nothing spawned) is a no-op.
  void Join();

 private:
  std::vector<std::function<void()>> pending_;
};

/// Explores `body` under `opts`. The body runs once per execution on
/// the calling thread; it must be deterministic given the checker's
/// decisions (no real time, no real randomness, no external I/O).
Result Check(const Options& opts,
             const std::function<void(Execution&)>& body);

/// Records a failure for the current execution and aborts it. Usable
/// from the body or any spawned thread.
[[noreturn]] void Fail(const std::string& message);

#define MODEL_ASSERT(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::asterix::mc::Fail(std::string("MODEL_ASSERT failed: " #cond     \
                                      " at " __FILE__ ":") +            \
                          std::to_string(__LINE__));                    \
    }                                                                   \
  } while (0)

/// True when the calling thread is currently under checker control
/// (inside Check, not unwinding from an abort). Hooks pass through to
/// plain storage otherwise (static init, teardown).
bool Active();

// --------------------------------------------------------------------
// Shim hooks (called by common/atomic_shim.h and the model-build
// Mutex/CondVar in common/thread_annotations.h; not for test code).
// --------------------------------------------------------------------

enum class Rmw : uint8_t { kExchange, kAdd, kSub };

uint64_t HookLoad(const void* loc, std::memory_order mo, uint64_t plain);
void HookStore(void* loc, uint64_t value, std::memory_order mo,
               uint64_t* plain);
uint64_t HookRmw(void* loc, Rmw op, uint64_t operand, std::memory_order mo,
                 uint64_t* plain);
bool HookCas(void* loc, uint64_t* expected, uint64_t desired, bool weak,
             std::memory_order mo, std::memory_order fail_mo,
             uint64_t* plain);
void HookFence(std::memory_order mo);
void HookForget(const void* loc);

void HookDataRead(const void* cell);
void HookDataWrite(void* cell);
void HookDataForget(const void* cell);

void HookMutexLock(void* mu);
void HookMutexUnlock(void* mu);
/// Releases `mu`, parks until notified or (when `timed`) the virtual
/// deadline passes, reacquires `mu`. Returns false on timeout.
bool HookCvWait(void* cv, void* mu, bool timed,
                std::chrono::nanoseconds rel_timeout);
void HookCvNotifyAll(void* cv);

/// Parks the calling thread until the latest store to `loc` differs
/// from `observed` (the model-build SpinWaitWhile).
void HookBlockWhileValue(const void* loc, uint64_t observed);

/// Fairness hint for spin-retry loops whose exit condition spans several
/// locations (so HookBlockWhileValue does not apply). The calling thread
/// is kept off the schedule until another thread executes a write-ish
/// op; without it an unfair schedule can starve the peer whose progress
/// the loop waits on, and every such loop reports as a livelock.
void HookYield();

std::chrono::steady_clock::time_point HookSteadyNow();

}  // namespace mc
}  // namespace asterix
