// Compile-time concurrency discipline: Clang Thread Safety Analysis
// attribute macros plus annotated synchronization primitives.
//
// Every mutex-protected class in src/ declares its locks as
// common::Mutex / common::SharedMutex and tags the state they protect
// with GUARDED_BY(mutex_), helper methods that expect the lock with
// REQUIRES(mutex_), and public entry points that must not be called
// with the lock held with EXCLUDES(mutex_). Under Clang (the `analyze`
// CMake preset: -Wthread-safety -Werror) wrong lock scopes are build
// errors; under other compilers the macros expand to nothing and the
// wrappers are zero-cost shims over the std primitives.
//
// The invariant linter (tools/lint/check_invariants.py) enforces that
// src/ never declares a raw std::mutex / std::shared_mutex outside this
// header, so the annotations stay enforceable everywhere.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/deadlock_detector.h"
#include "common/lock_rank.h"

#ifdef ASTERIX_MODEL_CHECK
#include "common/model_check.h"
#endif

// Deadlock-detector plumbing. When ASTERIX_DEADLOCK_DETECTOR is compiled
// in, every Lock/TryLock/Unlock (and the RAII guards) captures the
// caller's std::source_location and reports the acquisition to
// common::DeadlockDetector — guarded by one relaxed atomic load when the
// detector is disarmed. When compiled out, the parameters and hooks
// vanish entirely and the wrappers are the same zero-cost shims as
// before.
#ifdef ASTERIX_DEADLOCK_DETECTOR
#define ASTERIX_DD_ARG0 \
  const std::source_location& asterix_dd_loc = std::source_location::current()
#define ASTERIX_DD_ARGN \
  , const std::source_location& asterix_dd_loc = std::source_location::current()
#define ASTERIX_DD_FWD asterix_dd_loc
#define ASTERIX_DD_ON_ACQUIRE(rank)                                   \
  do {                                                                \
    if (::asterix::common::DeadlockDetector::Armed())                 \
      ::asterix::common::DeadlockDetector::OnAcquire((rank),          \
                                                     asterix_dd_loc); \
  } while (0)
#define ASTERIX_DD_ON_TRY(rank, acquired)                                \
  do {                                                                   \
    if ((acquired) && ::asterix::common::DeadlockDetector::Armed())      \
      ::asterix::common::DeadlockDetector::OnTryAcquire((rank),          \
                                                        asterix_dd_loc); \
  } while (0)
#define ASTERIX_DD_ON_RELEASE(rank)                        \
  do {                                                     \
    if (::asterix::common::DeadlockDetector::Armed())      \
      ::asterix::common::DeadlockDetector::OnRelease(rank); \
  } while (0)
#else
#define ASTERIX_DD_ARG0
#define ASTERIX_DD_ARGN
#define ASTERIX_DD_FWD
#define ASTERIX_DD_ON_ACQUIRE(rank) ((void)0)
#define ASTERIX_DD_ON_TRY(rank, acquired) ((void)0)
#define ASTERIX_DD_ON_RELEASE(rank) ((void)0)
#endif

#if defined(__clang__) && !defined(SWIG)
#define ASTERIX_TSA_ATTR(x) __attribute__((x))
#else
#define ASTERIX_TSA_ATTR(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) ASTERIX_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY ASTERIX_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) ASTERIX_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) ASTERIX_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) ASTERIX_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) ASTERIX_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) ASTERIX_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ASTERIX_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) ASTERIX_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ASTERIX_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) ASTERIX_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ASTERIX_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  ASTERIX_TSA_ATTR(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) ASTERIX_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ASTERIX_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) ASTERIX_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) ASTERIX_TSA_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  ASTERIX_TSA_ATTR(assert_shared_capability(x))

// Model-build destructor escape hatch. A destructor that issues checker
// hooks (MutexLock's unlock, MemLease's release) can park its thread in
// the scheduler; if the execution is aborted while parked, the hook
// raises the teardown exception — which must be able to propagate
// through the destructor. Destructors are implicitly noexcept, so model
// builds explicitly open them up; production builds keep the default.
#ifdef ASTERIX_MODEL_CHECK
#define ASTERIX_MC_MAY_THROW noexcept(false)
#else
#define ASTERIX_MC_MAY_THROW
#endif
#define RETURN_CAPABILITY(x) ASTERIX_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS ASTERIX_TSA_ATTR(no_thread_safety_analysis)

namespace asterix {
namespace common {

class CondVar;

/// std::mutex with Thread Safety Analysis capability annotations and a
/// LockRank for the runtime lock-order checker (common/lock_rank.h).
/// Non-reentrant. Prefer the MutexLock guard over manual Lock/Unlock.
///
/// Every Mutex in src/ must name its rank (the LOCK-RANK lint enforces
/// it): `Mutex mu_{LockRank::kSubscriberQueue};`. The default kUnranked
/// constructor exists for tests and examples only.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(ASTERIX_DD_ARG0) ACQUIRE() {
    ASTERIX_DD_ON_ACQUIRE(rank_);
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      mc::HookMutexLock(this);
      model_locked_ = true;
      return;
    }
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
#ifdef ASTERIX_MODEL_CHECK
    // Matched against the path Lock() took, NOT mc::Active() now: an
    // execution abort unwinds RAII guards after the checker detaches,
    // and unlocking the never-locked std::mutex would be UB.
    if (model_locked_) {
      model_locked_ = false;
      if (mc::Active()) mc::HookMutexUnlock(this);
      ASTERIX_DD_ON_RELEASE(rank_);
      return;
    }
#endif
    mu_.unlock();
    ASTERIX_DD_ON_RELEASE(rank_);
  }
  bool TryLock(ASTERIX_DD_ARG0) TRY_ACQUIRE(true) {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      // No modeled try-lock: nothing on the checked data plane uses it.
      // Treat as a blocking acquire so a stray call stays sound.
      mc::HookMutexLock(this);
      model_locked_ = true;
      return true;
    }
#endif
    bool acquired = mu_.try_lock();
    ASTERIX_DD_ON_TRY(rank_, acquired);
    return acquired;
  }

  /// Tells the analysis the lock is already held (runtime no-op), for the
  /// rare callback that is documented to run under a lock the analysis
  /// cannot see being taken.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
#ifdef ASTERIX_MODEL_CHECK
  bool model_locked_ = false;  // single-threaded under the scheduler
#endif
};

/// std::shared_mutex with capability annotations: exclusive writers,
/// shared readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock(ASTERIX_DD_ARG0) ACQUIRE() {
    ASTERIX_DD_ON_ACQUIRE(rank_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    ASTERIX_DD_ON_RELEASE(rank_);
  }
  bool TryLock(ASTERIX_DD_ARG0) TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
    ASTERIX_DD_ON_TRY(rank_, acquired);
    return acquired;
  }

  // Shared acquisitions obey the same rank discipline: a reader blocked
  // behind a writer deadlocks exactly like an exclusive waiter.
  void LockShared(ASTERIX_DD_ARG0) ACQUIRE_SHARED() {
    ASTERIX_DD_ON_ACQUIRE(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    ASTERIX_DD_ON_RELEASE(rank_);
  }
  bool TryLockShared(ASTERIX_DD_ARG0) TRY_ACQUIRE_SHARED(true) {
    bool acquired = mu_.try_lock_shared();
    ASTERIX_DD_ON_TRY(rank_, acquired);
    return acquired;
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

/// RAII exclusive lock over Mutex — the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu ASTERIX_DD_ARGN) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock(ASTERIX_DD_FWD);
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ASTERIX_MC_MAY_THROW RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu ASTERIX_DD_ARGN) ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(ASTERIX_DD_FWD);
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu ASTERIX_DD_ARGN)
      ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared(ASTERIX_DD_FWD);
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with common::Mutex. Wait() et al. must be
/// called with the mutex held (the annotation enforces it); internally
/// they adopt the held std::mutex so the plain std::condition_variable
/// fast path is preserved — no condition_variable_any overhead.
///
/// Like std::condition_variable, waits can wake spuriously; prefer the
/// predicate overloads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      (void)mc::HookCvWait(this, &mu, /*timed=*/false, {});
      return;
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      while (!pred()) (void)mc::HookCvWait(this, &mu, /*timed=*/false, {});
      return;
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      bool woken = mc::HookCvWait(
          this, &mu, /*timed=*/true,
          std::chrono::duration_cast<std::chrono::nanoseconds>(timeout));
      return woken ? std::cv_status::no_timeout : std::cv_status::timeout;
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  /// Returns pred() — false means the wait timed out with the predicate
  /// still unsatisfied.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      while (!pred()) {
        if (!mc::HookCvWait(
                this, &mu, /*timed=*/true,
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    timeout))) {
          return pred();
        }
      }
      return true;
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() {
#ifdef ASTERIX_MODEL_CHECK
    // Modeled as NotifyAll: woken waiters re-check their condition, so
    // over-waking explores a superset of behaviours (sound for safety
    // properties; it cannot mask a lost wakeup).
    if (mc::Active()) {
      mc::HookCvNotifyAll(this);
      return;
    }
#endif
    cv_.notify_one();
  }
  void NotifyAll() {
#ifdef ASTERIX_MODEL_CHECK
    if (mc::Active()) {
      mc::HookCvNotifyAll(this);
      return;
    }
#endif
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace asterix
